//! The DCF state machine.
//!
//! One [`DcfMac`] instance runs per node and plays both roles: the *sender
//! path* (DIFS → backoff → transmit → wait-for-ACK → retry/drop) and the
//! *receiver path* (SIFS-delayed ACKs for data addressed to us). The two
//! paths share the half-duplex radio; collisions between them resolve the
//! way real hardware does — whoever reaches the radio first wins, the other
//! retries off carrier-state edges.
//!
//! Timers carry `(class, generation)` tokens. There is no cancellation in
//! the simulator; a path invalidates its outstanding timers by bumping its
//! generation counter, and stale tokens are ignored on arrival.

use rand::Rng;

use cmap_sim::app::AppPacket;
use cmap_sim::time::{ns_to_u32_saturating, whole_slots, Time};
use cmap_sim::{CounterId, Mac, NodeCtx, RxInfo};
use cmap_wire::view::compose;
use cmap_wire::{dot11, FrameView, MacAddr};

use crate::config::DcfConfig;
use crate::timing::{DIFS_NS, EIFS_NS, SIFS_NS, SLOT_NS};

const CLASS_DIFS: u64 = 1;
const CLASS_BACKOFF: u64 = 2;
const CLASS_ACK_TIMEOUT: u64 = 3;
const CLASS_SIFS_ACK: u64 = 4;
const CLASS_NAV: u64 = 5;

const GEN_MASK: u64 = (1 << 56) - 1;

fn token(class: u64, gen: u64) -> u64 {
    (class << 56) | (gen & GEN_MASK)
}

fn untoken(token: u64) -> (u64, u64) {
    (token >> 56, token & GEN_MASK)
}

/// Sender-path state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum TxState {
    /// No packet being worked on.
    Idle,
    /// Have a packet; waiting for the medium (CCA or NAV) to clear.
    WaitMedium,
    /// Medium went idle; waiting out DIFS.
    WaitDifs,
    /// Counting down backoff slots (timer armed at `started`).
    Backoff { started: Time },
    /// Our data frame is on the air.
    Transmitting,
    /// Data sent; waiting for the ACK or its timeout.
    WaitAck,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InFlight {
    Data,
    Ack,
}

struct CurPacket {
    pkt: AppPacket,
    seq: u16,
    retries: u32,
}

/// An 802.11 DCF link layer (see crate docs).
pub struct DcfMac {
    cfg: DcfConfig,
    state: TxState,
    cur: Option<CurPacket>,
    cw: u32,
    backoff_slots: u32,
    next_seq: u16,
    nav_until: Time,
    /// Medium must stay idle until this instant before DIFS restarts (EIFS
    /// after an undecodable reception).
    eifs_until: Time,
    sender_gen: u64,
    rx_gen: u64,
    pending_ack_to: Option<MacAddr>,
    in_flight: Option<InFlight>,
}

impl DcfMac {
    /// Create a DCF MAC with the given configuration.
    pub fn new(cfg: DcfConfig) -> DcfMac {
        let cw = cfg.cw_min;
        DcfMac {
            cfg,
            state: TxState::Idle,
            cur: None,
            cw,
            backoff_slots: 0,
            next_seq: 0,
            nav_until: 0,
            eifs_until: 0,
            sender_gen: 0,
            rx_gen: 0,
            pending_ack_to: None,
            in_flight: None,
        }
    }

    /// The configuration this MAC runs with.
    pub fn config(&self) -> &DcfConfig {
        &self.cfg
    }

    fn medium_clear(&self, ctx: &NodeCtx<'_>) -> bool {
        !self.cfg.carrier_sense
            || (!ctx.carrier_busy() && ctx.now() >= self.nav_until && ctx.now() >= self.eifs_until)
    }

    /// Drive the sender path from Idle/WaitMedium towards transmission.
    fn kick(&mut self, ctx: &mut NodeCtx<'_>) {
        if !matches!(self.state, TxState::Idle | TxState::WaitMedium) {
            return;
        }
        if self.in_flight.is_some() {
            // Radio busy with our own ACK; resume on its completion edge.
            self.state = TxState::WaitMedium;
            return;
        }
        if self.cur.is_none() {
            match ctx.app_pop() {
                Some(pkt) => {
                    let seq = self.next_seq;
                    self.next_seq = self.next_seq.wrapping_add(1);
                    self.cur = Some(CurPacket {
                        pkt,
                        seq,
                        retries: 0,
                    });
                }
                None => {
                    self.state = TxState::Idle;
                    return;
                }
            }
        }
        if !self.cfg.carrier_sense {
            if self.backoff_slots > 0 {
                self.arm_backoff(ctx);
            } else {
                self.transmit_data(ctx);
            }
            return;
        }
        if ctx.carrier_busy() {
            self.state = TxState::WaitMedium;
        } else if ctx.now() < self.nav_until.max(self.eifs_until) {
            self.state = TxState::WaitMedium;
            self.sender_gen += 1;
            let wait = self.nav_until.max(self.eifs_until) - ctx.now();
            ctx.set_timer(wait, token(CLASS_NAV, self.sender_gen));
        } else {
            self.state = TxState::WaitDifs;
            self.sender_gen += 1;
            ctx.set_timer(DIFS_NS, token(CLASS_DIFS, self.sender_gen));
        }
    }

    fn arm_backoff(&mut self, ctx: &mut NodeCtx<'_>) {
        self.state = TxState::Backoff { started: ctx.now() };
        self.sender_gen += 1;
        let wait = Time::from(self.backoff_slots) * SLOT_NS;
        ctx.set_timer(wait, token(CLASS_BACKOFF, self.sender_gen));
    }

    /// The medium went busy (or NAV landed) while deferring: pause the
    /// countdown, remembering consumed slots.
    fn pause(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.state {
            TxState::WaitDifs => {
                self.sender_gen += 1;
                self.state = TxState::WaitMedium;
            }
            TxState::Backoff { started } => {
                let consumed = whole_slots(ctx.now() - started, SLOT_NS);
                self.backoff_slots = self.backoff_slots.saturating_sub(consumed);
                self.sender_gen += 1;
                self.state = TxState::WaitMedium;
            }
            _ => {}
        }
        // If only the NAV/EIFS holds us, arrange a wake-up at its expiry.
        let hold = self.nav_until.max(self.eifs_until);
        if self.state == TxState::WaitMedium && !ctx.carrier_busy() && ctx.now() < hold {
            self.sender_gen += 1;
            let wait = hold - ctx.now();
            ctx.set_timer(wait, token(CLASS_NAV, self.sender_gen));
        }
    }

    fn transmit_data(&mut self, ctx: &mut NodeCtx<'_>) {
        let (dst, seq, retry, duration, flow, flow_seq, payload_len) = {
            let cur = self.cur.as_ref().expect("transmit without packet");
            let duration = if self.ack_expected() {
                ns_to_u32_saturating(SIFS_NS + self.ack_airtime())
            } else {
                0
            };
            (
                cur.pkt.dst_mac,
                cur.seq,
                cur.retries > 0,
                duration,
                cur.pkt.flow,
                cur.pkt.flow_seq,
                cur.pkt.payload_len,
            )
        };
        let me = ctx.mac_addr();
        let sent = ctx.transmit_with(self.cfg.rate, |buf| {
            compose::dot11_data(buf, me, dst, seq, retry, duration, flow, flow_seq, payload_len, 0xC5);
        });
        if sent {
            self.state = TxState::Transmitting;
            self.in_flight = Some(InFlight::Data);
            ctx.stats().bump(CounterId::DcfTxData);
        } else {
            self.state = TxState::WaitMedium;
        }
    }

    fn ack_expected(&self) -> bool {
        self.cfg.acks
            && self
                .cur
                .as_ref()
                .is_some_and(|c| !c.pkt.dst_mac.is_broadcast())
    }

    fn ack_airtime(&self) -> Time {
        self.cfg.ack_rate.frame_airtime_ns(dot11::Ack::WIRE_LEN)
    }

    /// Done with the current packet (delivered, dropped, or fire-and-forget):
    /// run the post-backoff and move on.
    fn finish_packet(&mut self, ctx: &mut NodeCtx<'_>) {
        self.cur = None;
        self.backoff_slots = if self.cfg.post_backoff {
            ctx.rng().gen_range(0..=self.cw)
        } else {
            0
        };
        self.state = TxState::Idle;
        self.kick(ctx);
    }

    fn on_ack_timeout(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.stats().bump(CounterId::DcfAckTimeout);
        let drop = {
            let cur = self.cur.as_mut().expect("ack timeout without packet");
            cur.retries += 1;
            cur.retries > self.cfg.retry_limit
        };
        if drop {
            ctx.stats().bump(CounterId::DcfDrop);
            self.cw = self.cfg.cw_min;
            self.finish_packet(ctx);
        } else {
            ctx.stats().bump(CounterId::DcfRetx);
            self.cw = ((self.cw + 1) * 2 - 1).min(self.cfg.cw_max);
            self.backoff_slots = ctx.rng().gen_range(0..=self.cw);
            self.state = TxState::Idle;
            self.kick(ctx);
        }
    }

    fn on_ack_received(&mut self, ctx: &mut NodeCtx<'_>) {
        self.sender_gen += 1; // invalidate the pending ACK timeout
        self.cw = self.cfg.cw_min;
        ctx.stats().bump(CounterId::DcfAckOk);
        self.finish_packet(ctx);
    }

    // ---- cmap-ckpt/v2 ----------------------------------------------------

    /// Parse a [`Mac::save_state`] blob into this (identically-configured)
    /// instance; typed-error core of [`Mac::load_state`].
    fn load_ckpt(&mut self, bytes: &[u8]) -> Result<(), cmap_sim::CkptError> {
        use cmap_sim::ckpt::{CkptError, CkptReader};
        let get_addr = |r: &mut CkptReader<'_>| -> Result<MacAddr, CkptError> {
            let mut b = [0u8; MacAddr::LEN];
            for byte in &mut b {
                *byte = r.u8()?;
            }
            Ok(MacAddr(b))
        };
        let mut r = CkptReader::new(bytes)?;
        self.state = match r.u8()? {
            0 => TxState::Idle,
            1 => TxState::WaitMedium,
            2 => TxState::WaitDifs,
            3 => TxState::Backoff { started: r.u64()? },
            4 => TxState::Transmitting,
            5 => TxState::WaitAck,
            other => return Err(CkptError::Malformed(format!("tx state tag {other}"))),
        };
        self.cur = if r.bool()? {
            let flow = r.u16()?;
            let flow_seq = r.u32()?;
            let dst = cmap_sim::NodeId::new(r.len()?);
            let dst_mac = get_addr(&mut r)?;
            let payload_len = r.len()?;
            let seq = r.u16()?;
            let retries = r.u32()?;
            Some(CurPacket {
                pkt: AppPacket {
                    flow,
                    flow_seq,
                    dst,
                    dst_mac,
                    payload_len,
                },
                seq,
                retries,
            })
        } else {
            None
        };
        self.cw = r.u32()?;
        self.backoff_slots = r.u32()?;
        self.next_seq = r.u16()?;
        self.nav_until = r.u64()?;
        self.eifs_until = r.u64()?;
        self.sender_gen = r.u64()?;
        self.rx_gen = r.u64()?;
        self.pending_ack_to = if r.bool()? {
            Some(get_addr(&mut r)?)
        } else {
            None
        };
        self.in_flight = match r.u8()? {
            0 => None,
            1 => Some(InFlight::Data),
            2 => Some(InFlight::Ack),
            other => return Err(CkptError::Malformed(format!("in-flight tag {other}"))),
        };
        r.expect_end()
    }

    fn update_nav(&mut self, ctx: &mut NodeCtx<'_>, frame_end: Time, duration_ns: u32) {
        if !self.cfg.carrier_sense || duration_ns == 0 {
            return;
        }
        let until = frame_end + Time::from(duration_ns);
        if until > self.nav_until {
            self.nav_until = until;
            if matches!(self.state, TxState::WaitDifs | TxState::Backoff { .. }) {
                self.pause(ctx);
            }
        }
    }
}

impl Mac for DcfMac {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        self.kick(ctx);
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        // Crash-restart: all volatile MAC state is lost, including any
        // packet that was mid-exchange.
        self.state = TxState::Idle;
        self.cur = None;
        self.cw = self.cfg.cw_min;
        self.backoff_slots = 0;
        self.nav_until = 0;
        self.eifs_until = 0;
        self.pending_ack_to = None;
        self.in_flight = None;
        // Bump, never reset: timers armed before the crash must come back
        // stale, and generations only ever grow.
        self.sender_gen += 1;
        self.rx_gen += 1;
        ctx.stats().bump(CounterId::DcfRestart);
        self.kick(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tok: u64) {
        let (class, gen) = untoken(tok);
        match class {
            CLASS_SIFS_ACK if gen == self.rx_gen => {
                if let Some(dst) = self.pending_ack_to.take() {
                    let sent = ctx.transmit_with(self.cfg.ack_rate, |buf| {
                        compose::dot11_ack(buf, dst);
                    });
                    if sent {
                        self.in_flight = Some(InFlight::Ack);
                        ctx.stats().bump(CounterId::DcfAckTx);
                    } else {
                        ctx.stats().bump(CounterId::DcfAckTxBlocked);
                    }
                }
            }
            CLASS_DIFS if gen == self.sender_gen && self.state == TxState::WaitDifs => {
                if self.medium_clear(ctx) {
                    if self.backoff_slots == 0 {
                        self.transmit_data(ctx);
                    } else {
                        self.arm_backoff(ctx);
                    }
                } else {
                    self.pause(ctx);
                }
            }
            CLASS_BACKOFF
                if gen == self.sender_gen && matches!(self.state, TxState::Backoff { .. }) =>
            {
                self.backoff_slots = 0;
                if self.medium_clear(ctx) {
                    self.transmit_data(ctx);
                } else {
                    self.pause(ctx);
                }
            }
            CLASS_ACK_TIMEOUT if gen == self.sender_gen && self.state == TxState::WaitAck => {
                self.on_ack_timeout(ctx);
            }
            CLASS_NAV if gen == self.sender_gen && self.state == TxState::WaitMedium => {
                self.kick(ctx);
            }
            _ => {} // stale token
        }
    }

    fn on_rx_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &FrameView<'_>, info: RxInfo) {
        match frame {
            FrameView::Dot11Data(d) => {
                if d.dst() == ctx.mac_addr() {
                    ctx.deliver(d.flow(), d.flow_seq());
                    if self.cfg.acks {
                        self.pending_ack_to = Some(d.src());
                        self.rx_gen += 1;
                        ctx.set_timer(SIFS_NS, token(CLASS_SIFS_ACK, self.rx_gen));
                    }
                } else {
                    self.update_nav(ctx, info.end, d.duration_ns());
                }
            }
            FrameView::Dot11Ack(a)
                if a.dst() == ctx.mac_addr() && self.state == TxState::WaitAck =>
            {
                self.on_ack_received(ctx);
            }
            _ => {} // frames from other protocols: energy already modelled
        }
    }

    fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.in_flight.take() {
            Some(InFlight::Data) => {
                if self.ack_expected() {
                    self.state = TxState::WaitAck;
                    self.sender_gen += 1;
                    ctx.set_timer(
                        self.cfg.ack_timeout_ns,
                        token(CLASS_ACK_TIMEOUT, self.sender_gen),
                    );
                } else {
                    // Fire-and-forget (no-acks baseline or broadcast).
                    self.finish_packet(ctx);
                }
            }
            Some(InFlight::Ack) => {
                // Receiver path done; the sender path resumes via the
                // busy->idle edge that follows this TxEnd.
            }
            None => {
                ctx.stats().bump(CounterId::DcfUnexpectedTxDone);
            }
        }
    }

    fn on_rx_error(&mut self, ctx: &mut NodeCtx<'_>, _err: cmap_sim::RxErrorInfo) {
        if self.cfg.carrier_sense && self.cfg.eifs {
            self.eifs_until = ctx.now() + EIFS_NS;
            ctx.stats().bump(CounterId::DcfEifs);
            if matches!(self.state, TxState::WaitDifs | TxState::Backoff { .. }) {
                self.pause(ctx);
            }
        }
    }

    fn on_channel_state(&mut self, ctx: &mut NodeCtx<'_>, busy: bool) {
        if busy {
            if self.cfg.carrier_sense {
                self.pause(ctx);
            }
        } else if self.state == TxState::WaitMedium {
            self.kick(ctx);
        }
    }

    fn on_packet_queued(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.state == TxState::Idle {
            self.kick(ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        let mut w = cmap_sim::ckpt::CkptWriter::new();
        let put_addr = |w: &mut cmap_sim::ckpt::CkptWriter, a: MacAddr| {
            for b in a.0 {
                w.u8(b);
            }
        };
        match self.state {
            TxState::Idle => w.u8(0),
            TxState::WaitMedium => w.u8(1),
            TxState::WaitDifs => w.u8(2),
            TxState::Backoff { started } => {
                w.u8(3);
                w.u64(started);
            }
            TxState::Transmitting => w.u8(4),
            TxState::WaitAck => w.u8(5),
        }
        match &self.cur {
            None => w.bool(false),
            Some(cur) => {
                w.bool(true);
                w.u16(cur.pkt.flow);
                w.u32(cur.pkt.flow_seq);
                w.len(cur.pkt.dst.index());
                put_addr(&mut w, cur.pkt.dst_mac);
                w.len(cur.pkt.payload_len);
                w.u16(cur.seq);
                w.u32(cur.retries);
            }
        }
        w.u32(self.cw);
        w.u32(self.backoff_slots);
        w.u16(self.next_seq);
        w.u64(self.nav_until);
        w.u64(self.eifs_until);
        w.u64(self.sender_gen);
        w.u64(self.rx_gen);
        match self.pending_ack_to {
            None => w.bool(false),
            Some(a) => {
                w.bool(true);
                put_addr(&mut w, a);
            }
        }
        match self.in_flight {
            None => w.u8(0),
            Some(InFlight::Data) => w.u8(1),
            Some(InFlight::Ack) => w.u8(2),
        }
        out.extend_from_slice(&w.finish());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.load_ckpt(bytes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::time::secs;
    use cmap_sim::{MediumBuilder, PhyConfig, World};

    /// Build a world from RSS values in dBm (gain = rss - tx_power).
    fn world_from_rss(n: usize, rss: &[(usize, usize, f64)], seed: u64) -> World {
        let phy = PhyConfig::default();
        let mut gains = vec![f64::NEG_INFINITY; n * n];
        for &(a, b, rss_dbm) in rss {
            gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        }
        let delays = vec![100u64; n * n];
        let medium = MediumBuilder::new(&phy)
            .gains_db(n, &gains, &delays)
            .build();
        World::builder().medium(medium).phy(phy).seed(seed).build()
    }

    fn tput(w: &World, flow: u16, from: Time, to: Time) -> f64 {
        w.stats()
            .flow_throughput_mbps(flow, w.flow(flow).payload_len, from, to)
    }

    /// Symmetric RSS entries helper.
    fn sym(a: usize, b: usize, rss: f64) -> [(usize, usize, f64); 2] {
        [(a, b, rss), (b, a, rss)]
    }

    #[test]
    fn single_link_throughput_near_line_rate() {
        // The paper reports 5.07 Mbit/s for 802.11 at the 6 Mbit/s rate
        // (§4.2). Our DCF should land in the same neighbourhood.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 1);
        let f = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.run_until(secs(5));
        let mbps = tput(&w, f, secs(1), secs(5));
        assert!((4.6..5.8).contains(&mbps), "single-link DCF {mbps} Mbit/s");
        // Virtually no retransmissions on a clean link.
        let retx = w.stats().counter(CounterId::DcfRetx);
        let txs = w.stats().counter(CounterId::DcfTxData);
        assert!(retx * 50 < txs, "retx {retx} of {txs}");
    }

    #[test]
    fn dcf_survives_crash_restart_churn() {
        // Both ends crash (staggered) and come back; the DCF flow must
        // recover with no watchdog violations.
        use cmap_sim::faults::Outage;
        use cmap_sim::FaultPlan;
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 11);
        let f = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::status_quo())));
        let mut plan = FaultPlan::clean();
        plan.churn.push(Outage {
            node: cmap_sim::NodeId::new(0),
            down_at: secs(1),
            up_at: secs(2),
        });
        plan.churn.push(Outage {
            node: cmap_sim::NodeId::new(1),
            down_at: secs(3),
            up_at: secs(4),
        });
        w.install_faults(plan);
        w.run_until(secs(8));
        assert_eq!(w.watchdog_violations(), 0);
        assert_eq!(w.stats().counter(CounterId::DcfRestart), 2);
        let late = tput(&w, f, secs(5), secs(8));
        assert!(late > 3.5, "DCF did not recover after churn: {late}");
    }

    #[test]
    fn no_acks_is_slightly_faster_and_never_retransmits() {
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 2);
        let f = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.run_until(secs(5));
        let mbps = tput(&w, f, secs(1), secs(5));
        assert!((4.8..6.0).contains(&mbps), "blast throughput {mbps}");
        assert_eq!(w.stats().counter(CounterId::DcfRetx), 0);
        assert_eq!(w.stats().counter(CounterId::DcfAckTx), 0);
    }

    #[test]
    fn two_in_range_senders_share_the_channel() {
        // 0 -> 1 and 2 -> 3; senders hear each other loud and clear and both
        // transmissions interfere at both receivers: the conflicting case.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -65.0)); // senders in range
        rss.extend(sym(0, 3, -63.0)); // cross-interference strong
        rss.extend(sym(2, 1, -63.0));
        rss.extend(sym(1, 3, -80.0));
        let mut w = world_from_rss(4, &rss, 3);
        let f1 = w.add_flow(0, 1, 1400);
        let f2 = w.add_flow(2, 3, 1400);
        for n in 0..4 {
            w.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo())));
        }
        w.run_until(secs(5));
        let t1 = tput(&w, f1, secs(1), secs(5));
        let t2 = tput(&w, f2, secs(1), secs(5));
        let total = t1 + t2;
        // The pair shares one channel: aggregate close to single-link rate.
        assert!((4.0..6.0).contains(&total), "aggregate {total}");
        // And reasonably fairly.
        let ratio = t1.max(t2) / t1.min(t2).max(0.01);
        assert!(ratio < 3.0, "unfair split {t1} vs {t2}");
    }

    #[test]
    fn exposed_terminals_blast_doubles_throughput() {
        // Exposed configuration: senders hear each other, receivers hear
        // only their own sender. Carrier sense serialises; blasting doesn't.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -75.0)); // senders in range of each other
        rss.extend(sym(0, 3, -93.0)); // receivers far from the other sender
        rss.extend(sym(2, 1, -93.0));
        rss.extend(sym(1, 3, -95.0));
        let run = |cfg: DcfConfig, seed| {
            let mut w = world_from_rss(4, &rss, seed);
            let f1 = w.add_flow(0, 1, 1400);
            let f2 = w.add_flow(2, 3, 1400);
            for n in 0..4 {
                w.set_mac(n, Box::new(DcfMac::new(cfg.clone())));
            }
            w.run_until(secs(5));
            tput(&w, f1, secs(1), secs(5)) + tput(&w, f2, secs(1), secs(5))
        };
        let cs_on = run(DcfConfig::status_quo(), 4);
        let blast = run(DcfConfig::cs_off_no_acks(), 5);
        assert!((4.0..6.2).contains(&cs_on), "CS-on aggregate {cs_on}");
        assert!(blast > 1.7 * cs_on, "blast {blast} vs CS {cs_on}");
    }

    #[test]
    fn hidden_terminals_collapse_without_protection() {
        // Senders cannot hear each other; both receivers hear both senders.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        // Senders mutually silent: no entries for (0,2).
        rss.extend(sym(0, 3, -62.0));
        rss.extend(sym(2, 1, -62.0));
        rss.extend(sym(1, 3, -70.0));
        let run = |cfg: DcfConfig, seed| {
            let mut w = world_from_rss(4, &rss, seed);
            let f1 = w.add_flow(0, 1, 1400);
            let f2 = w.add_flow(2, 3, 1400);
            for n in 0..4 {
                w.set_mac(n, Box::new(DcfMac::new(cfg.clone())));
            }
            w.run_until(secs(5));
            tput(&w, f1, secs(1), secs(5)) + tput(&w, f2, secs(1), secs(5))
        };
        // Blasting: near-total mutual destruction (only capture survives).
        let blast = run(DcfConfig::cs_off_no_acks(), 6);
        // Clean single pair for reference.
        let mut w = world_from_rss(4, &rss, 7);
        let f1 = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.run_until(secs(5));
        let single = tput(&w, f1, secs(1), secs(5));
        assert!(
            blast < 0.6 * 2.0 * single,
            "hidden blast {blast} vs single {single}"
        );
    }

    #[test]
    fn nav_protects_ack_exchanges() {
        // Node 2 hears sender 0 but not receiver 1... with NAV it still
        // defers for the SIFS+ACK window after 0's frames. We verify via
        // counters that ACKs rarely time out despite 2 blasting nearby.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(0, 2, -70.0)); // 2 hears 0 (and its NAV)
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(2, 1, -90.0)); // 2 barely disturbs 1
        rss.extend(sym(0, 3, -90.0));
        rss.extend(sym(1, 3, -95.0));
        let mut w = world_from_rss(4, &rss, 8);
        let f1 = w.add_flow(0, 1, 1400);
        let _f2 = w.add_flow(2, 3, 1400);
        for n in 0..4 {
            w.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo())));
        }
        w.run_until(secs(5));
        let timeouts = w.stats().counter(CounterId::DcfAckTimeout);
        let acked = w.stats().counter(CounterId::DcfAckOk);
        assert!(acked > 1000, "acked {acked}");
        assert!(timeouts * 20 < acked, "{timeouts} timeouts vs {acked} acks");
        assert!(tput(&w, f1, secs(1), secs(5)) > 1.5);
    }

    #[test]
    fn retry_limit_drops_frames_to_a_dead_receiver() {
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 9);
        w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        // Node 1 keeps the NullMac: receives but never ACKs.
        w.run_until(secs(2));
        let drops = w.stats().counter(CounterId::DcfDrop);
        let retx = w.stats().counter(CounterId::DcfRetx);
        assert!(drops > 10, "drops {drops}");
        // Every drop is preceded by RETRY_LIMIT retransmissions (the run may
        // end mid-sequence, so allow one partial round).
        let limit = u64::from(crate::timing::RETRY_LIMIT);
        assert!(
            retx >= drops * limit && retx <= (drops + 1) * limit,
            "retx {retx} for {drops} drops"
        );
    }

    #[test]
    fn broadcast_data_needs_no_ack() {
        // A flow to the broadcast... flows are unicast; test via the MAC's
        // ack_expected logic instead: with acks disabled no ACKs are ever
        // produced by the receiver either.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 30);
        let f = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.run_until(secs(2));
        assert!(w.stats().flow(f).arrivals.len() > 500);
        assert_eq!(w.stats().counter(CounterId::DcfAckTx), 0);
        assert_eq!(w.stats().counter(CounterId::DcfAckTimeout), 0);
    }

    #[test]
    fn post_backoff_can_be_disabled() {
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let cfg = DcfConfig {
            post_backoff: false,
            carrier_sense: false,
            acks: false,
            ..DcfConfig::default()
        };
        let mut w = world_from_rss(2, &rss, 31);
        let f = w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(cfg)));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::cs_off_no_acks())));
        w.run_until(secs(2));
        // Without post-backoff the sender is strictly back-to-back: higher
        // packet rate than the ~5.5 Mbit/s with backoff.
        let mbps = tput(&w, f, secs(1), secs(2));
        assert!(mbps > 5.5, "{mbps}");
    }

    #[test]
    fn cs_on_sender_defers_to_foreign_cmap_traffic() {
        // DCF cannot decode CMAP frames for NAV, but physical CCA still
        // sees them: a DCF sender sharing the room with a CMAP transfer
        // should interleave, not blast over it.
        use cmap_core::{CmapConfig, CmapMac};
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -70.0));
        rss.extend(sym(0, 3, -65.0));
        rss.extend(sym(2, 1, -65.0));
        rss.extend(sym(1, 3, -80.0));
        let mut w = world_from_rss(4, &rss, 32);
        let f_dcf = w.add_flow(0, 1, 1400);
        let _f_cmap = w.add_flow(2, 3, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.set_mac(1, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.set_mac(2, Box::new(CmapMac::new(CmapConfig::default())));
        w.set_mac(3, Box::new(CmapMac::new(CmapConfig::default())));
        w.run_until(secs(6));
        // The DCF flow survives (gets some share) rather than being starved
        // to zero or destroying everything.
        let mbps = tput(&w, f_dcf, secs(2), secs(6));
        assert!(mbps > 0.3, "DCF flow starved: {mbps}");
    }

    #[test]
    fn token_roundtrip() {
        for class in 1..=5u64 {
            for gen in [0u64, 1, 77, GEN_MASK] {
                assert_eq!(untoken(token(class, gen)), (class, gen));
            }
        }
    }

    #[test]
    fn cw_doubles_and_caps() {
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 10);
        w.add_flow(0, 1, 1400);
        w.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w.run_until(secs(1));
        let mac = w.mac_ref(0).as_any().downcast_ref::<DcfMac>().unwrap();
        // With no ACKs coming back, cw returns to min after each drop; it
        // never exceeds the configured max.
        assert!(mac.cw <= mac.cfg.cw_max);
    }
}
