//! # cmap-mac80211 — the 802.11 DCF baseline MAC
//!
//! The paper compares CMAP against "the status quo": the 802.11 distributed
//! coordination function with physical carrier sense and stop-and-wait
//! link-layer ACKs, and against variants with carrier sense and/or ACKs
//! disabled (§5). This crate implements that baseline as a
//! [`cmap_sim::Mac`]:
//!
//! * physical carrier sense (preamble lock + energy detect, via the radio's
//!   CCA) plus virtual carrier sense (NAV from overheard data frames'
//!   duration fields),
//! * DIFS deferral and slotted binary-exponential backoff (CW 15 → 1023),
//!   with the countdown paused while the medium is busy,
//! * stop-and-wait ACK with retransmission up to a retry limit, CW doubling
//!   on ACK timeout and reset on success,
//! * switches to disable carrier sense ([`DcfConfig::carrier_sense`]) and
//!   ACKs/retransmissions ([`DcfConfig::acks`]), reproducing the paper's
//!   "CS off" / "no acks" baselines.
//!
//! Omissions (documented in DESIGN.md): EIFS and RTS/CTS, neither of which
//! the paper's experiments use.

pub mod config;
pub mod mac;
pub mod timing;

pub use config::DcfConfig;
pub use mac::DcfMac;
