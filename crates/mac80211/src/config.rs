//! DCF configuration.

use cmap_phy::Rate;
use cmap_sim::time::{micros, Time};

use crate::timing;

/// Configuration of one [`DcfMac`](crate::DcfMac) instance.
#[derive(Debug, Clone)]
pub struct DcfConfig {
    /// Physical + virtual carrier sense. The paper's "CS off" baselines
    /// disable this: senders skip DIFS deferral, ignore CCA and NAV, and
    /// only space transmissions by their (post-)backoff.
    pub carrier_sense: bool,
    /// Link-layer ACKs and retransmissions. Disabled for the "no acks"
    /// baselines (§5.2, §5.4): frames are sent once, fire-and-forget.
    pub acks: bool,
    /// Bit-rate for data frames.
    pub rate: Rate,
    /// Bit-rate for ACK control frames (the base rate, like real cards).
    pub ack_rate: Rate,
    /// Minimum contention window in slots.
    pub cw_min: u32,
    /// Maximum contention window in slots.
    pub cw_max: u32,
    /// Retransmission attempts before a frame is dropped.
    pub retry_limit: u32,
    /// Post-backoff between consecutive frames even without loss feedback
    /// (real hardware always runs a CW_min backoff after a transmission).
    pub post_backoff: bool,
    /// How long after a data frame's end to wait for the ACK before
    /// declaring a timeout.
    pub ack_timeout_ns: Time,
    /// Use EIFS instead of DIFS after an undecodable reception (802.11's
    /// protection for the ACK exchange the station may have missed).
    pub eifs: bool,
}

impl Default for DcfConfig {
    fn default() -> DcfConfig {
        DcfConfig {
            carrier_sense: true,
            acks: true,
            rate: Rate::R6,
            ack_rate: Rate::BASE,
            cw_min: timing::CW_MIN,
            cw_max: timing::CW_MAX,
            retry_limit: timing::RETRY_LIMIT,
            post_backoff: true,
            // SIFS + ACK airtime at the base rate (~44 us) + PHY slack.
            ack_timeout_ns: timing::SIFS_NS + micros(44) + micros(15),
            eifs: true,
        }
    }
}

impl DcfConfig {
    /// The paper's "status quo": carrier sense on, ACKs on.
    pub fn status_quo() -> DcfConfig {
        DcfConfig::default()
    }

    /// Carrier sense disabled, ACKs enabled ("CS off, acks").
    pub fn cs_off_acks() -> DcfConfig {
        DcfConfig {
            carrier_sense: false,
            ..DcfConfig::default()
        }
    }

    /// Carrier sense and ACKs disabled ("CS off, no acks") — continuous
    /// blasting, used to probe raw concurrency (§5.2, §5.4).
    pub fn cs_off_no_acks() -> DcfConfig {
        DcfConfig {
            carrier_sense: false,
            acks: false,
            ..DcfConfig::default()
        }
    }

    /// Same config at a different data rate.
    pub fn at_rate(mut self, rate: Rate) -> DcfConfig {
        self.rate = rate;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn presets_flip_the_right_switches() {
        let sq = DcfConfig::status_quo();
        assert!(sq.carrier_sense && sq.acks);
        let ca = DcfConfig::cs_off_acks();
        assert!(!ca.carrier_sense && ca.acks);
        let cn = DcfConfig::cs_off_no_acks();
        assert!(!cn.carrier_sense && !cn.acks);
    }

    #[test]
    fn rate_builder() {
        let c = DcfConfig::status_quo().at_rate(Rate::R18);
        assert_eq!(c.rate, Rate::R18);
        assert_eq!(c.ack_rate, Rate::R6);
    }

    #[test]
    fn ack_timeout_covers_sifs_plus_ack() {
        let c = DcfConfig::default();
        // ACK frame: 14 bytes at 6 Mbit/s = 20 us PLCP + 6 symbols = 44 us.
        let ack_air = Rate::R6.frame_airtime_ns(cmap_wire::dot11::Ack::WIRE_LEN);
        assert!(c.ack_timeout_ns >= timing::SIFS_NS + ack_air);
    }
}
