//! The ongoing-transmissions list (§3.2).
//!
//! Every CMAP node runs promiscuously and tracks which virtual packets are
//! currently on the air around it, "using the source, destination, and
//! transmission time fields of the packet header to add and expire entries".
//! Headers announce a transmission's remaining duration; trailers end it
//! early; overheard data packets (which also carry source/destination)
//! refresh an entry conservatively when the header was missed.

use cmap_phy::Rate;
use cmap_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use cmap_sim::time::Time;
use cmap_wire::MacAddr;

use crate::ckpt_util::{get_addr, get_rate, put_addr, put_rate};

/// One transmission currently believed to be in progress.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct OngoingEntry {
    /// Transmitting node.
    pub src: MacAddr,
    /// Intended receiver.
    pub dst: MacAddr,
    /// When the transmission is expected to end.
    pub until: Time,
    /// Bit-rate of the data packets (from the §3.5 annotation).
    pub rate: Rate,
}

/// The set of transmissions in progress within hearing range.
#[derive(Debug, Default)]
pub struct OngoingList {
    entries: Vec<OngoingEntry>,
}

impl OngoingList {
    /// Empty list.
    pub fn new() -> OngoingList {
        OngoingList::default()
    }

    /// A header announced `src → dst` lasting until `until`.
    pub fn note_header(&mut self, src: MacAddr, dst: MacAddr, until: Time, rate: Rate) {
        match self.entries.iter_mut().find(|e| e.src == src) {
            Some(e) => {
                e.dst = dst;
                e.until = e.until.max(until);
                e.rate = rate;
            }
            None => self.entries.push(OngoingEntry {
                src,
                dst,
                until,
                rate,
            }),
        }
    }

    /// A trailer marked the end of `src`'s transmission.
    pub fn note_trailer(&mut self, src: MacAddr, now: Time) {
        self.entries.retain(|e| !(e.src == src && e.until >= now));
    }

    /// An overheard data packet from `src → dst`: keep the entry alive for
    /// at least `guard` past now (covers a missed header).
    pub fn note_data(&mut self, src: MacAddr, dst: MacAddr, now: Time, guard: Time, rate: Rate) {
        let until = now + guard;
        match self.entries.iter_mut().find(|e| e.src == src) {
            Some(e) => {
                e.dst = dst;
                e.until = e.until.max(until);
            }
            None => self.entries.push(OngoingEntry {
                src,
                dst,
                until,
                rate,
            }),
        }
    }

    /// Remove entries that have expired. Returns how many were evicted.
    pub fn prune(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|e| e.until > now);
        before - self.entries.len()
    }

    /// Live entries at `now`.
    pub fn iter_at(&self, now: Time) -> impl Iterator<Item = &OngoingEntry> {
        self.entries.iter().filter(move |e| e.until > now)
    }

    /// Is `node` currently the source or destination of any transmission?
    pub fn involves(&self, node: MacAddr, now: Time) -> Option<&OngoingEntry> {
        self.iter_at(now).find(|e| e.src == node || e.dst == node)
    }

    /// Latest expected end among live entries (for tests/diagnostics).
    pub fn latest_end(&self, now: Time) -> Option<Time> {
        self.iter_at(now).map(|e| e.until).max()
    }

    /// Number of live entries.
    pub fn len_at(&self, now: Time) -> usize {
        self.iter_at(now).count()
    }

    /// Append the list (in insertion order — the order is part of the
    /// deterministic state) to a `cmap-ckpt/v2` checkpoint.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.entries.len());
        for e in &self.entries {
            put_addr(w, e.src);
            put_addr(w, e.dst);
            w.u64(e.until);
            put_rate(w, e.rate);
        }
    }

    /// Rebuild a list from [`OngoingList::ckpt_save`] bytes.
    pub fn ckpt_load(r: &mut CkptReader<'_>) -> Result<OngoingList, CkptError> {
        let mut list = OngoingList::new();
        for _ in 0..r.len()? {
            list.entries.push(OngoingEntry {
                src: get_addr(r)?,
                dst: get_addr(r)?,
                until: r.u64()?,
                rate: get_rate(r)?,
            });
        }
        Ok(list)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    #[test]
    fn header_then_expiry() {
        let mut o = OngoingList::new();
        o.note_header(a(1), a(2), 1000, Rate::R6);
        assert_eq!(o.len_at(0), 1);
        assert_eq!(o.len_at(999), 1);
        assert_eq!(o.len_at(1000), 0);
        assert!(o.involves(a(1), 500).is_some());
        assert!(o.involves(a(2), 500).is_some());
        assert!(o.involves(a(3), 500).is_none());
    }

    #[test]
    fn trailer_ends_early() {
        let mut o = OngoingList::new();
        o.note_header(a(1), a(2), 10_000, Rate::R6);
        o.note_trailer(a(1), 4_000);
        assert_eq!(o.len_at(5_000), 0);
    }

    #[test]
    fn data_refreshes_missed_header() {
        let mut o = OngoingList::new();
        o.note_data(a(1), a(2), 100, 500, Rate::R6);
        assert_eq!(o.len_at(400), 1);
        // Subsequent data keeps pushing the horizon.
        o.note_data(a(1), a(2), 550, 500, Rate::R6);
        assert_eq!(o.len_at(700), 1);
        assert_eq!(o.len_at(1100), 0);
    }

    #[test]
    fn one_entry_per_source() {
        let mut o = OngoingList::new();
        o.note_header(a(1), a(2), 1000, Rate::R6);
        o.note_header(a(1), a(3), 2000, Rate::R6);
        assert_eq!(o.len_at(0), 1);
        let e = o.iter_at(0).next().unwrap();
        assert_eq!(e.dst, a(3));
        assert_eq!(e.until, 2000);
    }

    #[test]
    fn prune_discards_dead_entries() {
        let mut o = OngoingList::new();
        o.note_header(a(1), a(2), 10, Rate::R6);
        o.note_header(a(3), a(4), 1000, Rate::R6);
        assert_eq!(o.prune(500), 1);
        assert_eq!(o.entries.len(), 1);
        assert_eq!(o.latest_end(0), Some(1000));
    }
}
