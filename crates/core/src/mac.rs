//! The CMAP MAC: channel access, windowed retransmission, loss-rate backoff.
//!
//! Sender path (pseudocode of Fig 6):
//!
//! ```text
//! while data to send and N_outstanding < N_window {
//!     while defer table does not permit {
//!         wait until end of current transmission + t_deferwait
//!     }
//!     transmit virtual packet (header, N_vpkt data packets, trailer)
//!     wait up to t_ackwait for an ACK
//!     wait for a backoff duration in [0, CW]
//! }
//! // window full: time out U(τ_min, τ_max), repack unACKed packets, retransmit
//! ```
//!
//! Receiver path: deliver data, track per-virtual-packet bitmaps, and after
//! each trailer send a cumulative ACK carrying the bitmap and the observed
//! loss rate (Fig 7's input). Losses are attributed to overheard concurrent
//! transmitters to build the interferer list (§3.1), which is broadcast
//! periodically so conflicting senders can populate their defer tables.
//!
//! Every node also runs the promiscuous bookkeeping: the ongoing list from
//! headers/trailers/data, and activity windows for interference attribution.

use rand::Rng;

use cmap_sim::time::{micros, millis, ns_to_us_ceil, Time};
use cmap_sim::{CounterId, Mac, NodeCtx, RxInfo, TraceEvent};
use cmap_wire::cmap::{self, HeaderTrailer};
use cmap_wire::view::compose;
use cmap_wire::{FrameKind, FrameView, MacAddr};

use crate::config::CmapConfig;
use crate::defer_table::DeferTable;
use crate::interferer::InterfererTracker;
use crate::ongoing::OngoingList;
use crate::rate_control::{FixedRate, RateController};
use crate::vpkt::{DataPkt, PeerRx, SendWindow, SentVpkt};

const CLASS_ACKWAIT: u64 = 1;
const CLASS_BACKOFF: u64 = 2;
const CLASS_DEFER: u64 = 3;
const CLASS_RTX: u64 = 4;
const CLASS_BCAST: u64 = 5;
const CLASS_ACKSEND: u64 = 6;
const CLASS_VPKTEND: u64 = 7;

const GEN_MASK: u64 = (1 << 56) - 1;

fn token(class: u64, gen: u64) -> u64 {
    (class << 56) | (gen & GEN_MASK)
}

fn untoken(token: u64) -> (u64, u64) {
    (token >> 56, token & GEN_MASK)
}

/// Sender-path state.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum SState {
    /// Nothing in flight; may start a virtual packet.
    Idle,
    /// Conflict found; waiting for the conflicting transmission's end plus
    /// `t_deferwait` before re-checking.
    Deferring,
    /// Virtual packet going out (header / data burst / trailer).
    TxVpkt,
    /// Trailer sent; waiting up to `t_ackwait` for the ACK.
    AckWait,
    /// Waiting the `[0, CW]` backoff between virtual packets.
    Backoff,
    /// Send window full; waiting `U(τ_min, τ_max)` before repacking.
    RtxWait,
}

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum InFlight {
    Header,
    Data { idx: usize },
    Trailer,
    Ack,
    Broadcast,
}

/// The virtual packet currently being placed on the air (or deferred).
struct CurVpkt {
    dst: MacAddr,
    seq: u32,
    pkts: Vec<DataPkt>,
    is_rtx: bool,
    rate: cmap_phy::Rate,
    /// Retransmission rounds the packets have already been through.
    rounds: u32,
}

/// Per-sender receive state.
#[derive(Default)]
struct PeerState {
    rx: PeerRx,
    /// Last time any frame from this sender addressed us (eviction clock).
    last_heard: Time,
}

/// Padding value for the unused tail of a [`PendingAck`]'s entry array.
const NULL_ENTRY: cmap::InterfererEntry = cmap::InterfererEntry {
    source: MacAddr::BROADCAST,
    interferer: MacAddr::BROADCAST,
    source_rate: cmap_phy::Rate::BASE,
};

/// A queued cumulative ACK in fixed-size storage (the wire format caps
/// bitmaps at [`cmap::MAX_ACK_WINDOW`] and piggybacked entries at
/// [`cmap::Ack::MAX_IL_ENTRIES`]), so the receive path queues and sends
/// ACKs without allocating.
#[derive(Clone, Copy)]
struct PendingAck {
    src: MacAddr,
    dst: MacAddr,
    base_vpkt_seq: u32,
    bitmap_count: u8,
    bitmaps: [u32; cmap::MAX_ACK_WINDOW],
    loss_rate: u8,
    il_count: u8,
    il_entries: [cmap::InterfererEntry; cmap::Ack::MAX_IL_ENTRIES],
}

/// The CMAP link layer (see crate docs).
pub struct CmapMac {
    cfg: CmapConfig,
    state: SState,
    cur: Option<CurVpkt>,
    window: SendWindow,
    defer: DeferTable,
    ongoing: OngoingList,
    tracker: InterfererTracker,
    peers: std::collections::BTreeMap<MacAddr, PeerState>,
    /// Contention window (ns); 0 means "transmit immediately" (§3.4).
    cw: Time,
    sender_gen: u64,
    rx_gen: u64,
    /// Broadcast-timer generation: bumped on restart so a pre-crash
    /// broadcast timer cannot spawn a second re-arming chain.
    bcast_gen: u64,
    /// ACK-wait expiries since the last ACK actually heard — one input to
    /// the stale-map carrier-sense fallback.
    consecutive_ack_timeouts: u32,
    /// Last time an interferer-list entry (broadcast or ACK-piggybacked)
    /// was applied to the defer table — the other staleness input.
    last_map_refresh: Time,
    pending_acks: std::collections::VecDeque<PendingAck>,
    /// Reusable scratch for composing interferer-list broadcasts.
    il_scratch: Vec<cmap::InterfererEntry>,
    /// Virtual packets awaiting timer-based finalisation when trailers are
    /// disabled: (sender, seq, count, data rate, data-burst start).
    pending_finalize: std::collections::VecDeque<(MacAddr, u32, u8, cmap_phy::Rate, Time)>,
    in_flight: Option<InFlight>,
    rate_ctl: Box<dyn RateController>,
}

impl CmapMac {
    /// Create a CMAP MAC with the given configuration (fixed bit-rate, the
    /// paper's evaluation setting).
    pub fn new(cfg: CmapConfig) -> CmapMac {
        let rate = cfg.data_rate;
        CmapMac::with_rate_controller(cfg, Box::new(FixedRate(rate)))
    }

    /// Create a CMAP MAC with a custom bit-rate policy (§3.5 extension).
    /// Pair with `CmapConfig::rate_aware` to also match defer entries per
    /// rate.
    pub fn with_rate_controller(cfg: CmapConfig, rate_ctl: Box<dyn RateController>) -> CmapMac {
        CmapMac {
            cfg,
            state: SState::Idle,
            cur: None,
            window: SendWindow::new(),
            defer: DeferTable::new(),
            ongoing: OngoingList::new(),
            tracker: InterfererTracker::new(),
            peers: std::collections::BTreeMap::new(),
            cw: 0,
            sender_gen: 0,
            rx_gen: 0,
            bcast_gen: 0,
            consecutive_ack_timeouts: 0,
            last_map_refresh: 0,
            pending_acks: std::collections::VecDeque::new(),
            il_scratch: Vec::new(),
            pending_finalize: std::collections::VecDeque::new(),
            in_flight: None,
            rate_ctl,
        }
    }

    /// The configuration.
    pub fn config(&self) -> &CmapConfig {
        &self.cfg
    }

    /// The defer table (introspection for tests/harnesses).
    pub fn defer_table(&self) -> &DeferTable {
        &self.defer
    }

    /// The ongoing-transmission list.
    pub fn ongoing_list(&self) -> &OngoingList {
        &self.ongoing
    }

    /// The receiver-side interference tracker.
    pub fn interferer_tracker(&self) -> &InterfererTracker {
        &self.tracker
    }

    /// Current contention window in nanoseconds.
    pub fn contention_window(&self) -> Time {
        self.cw
    }

    /// Outstanding (unacknowledged) virtual packets in the send window.
    pub fn outstanding_vpkts(&self) -> usize {
        self.window.outstanding()
    }

    /// Is the §4 safety fallback engaged at `now`? True when the conflict
    /// map has not been refreshed for [`CmapConfig::map_stale_after`] *and*
    /// ACKs have repeatedly timed out: the node then stops trusting the map
    /// and defers to any overheard transmission, i.e. behaves like plain
    /// carrier sense until fresh map information arrives.
    pub fn csma_fallback_active(&self, now: Time) -> bool {
        self.cfg.fallback_csma
            && self.consecutive_ack_timeouts >= self.cfg.csma_fallback_after
            && now.saturating_sub(self.last_map_refresh) > self.cfg.map_stale_after
    }

    // ---- timing helpers -------------------------------------------------

    fn data_airtime(&self, payload_len: usize, rate: cmap_phy::Rate) -> Time {
        rate.frame_airtime_ns(cmap::Data::OVERHEAD + payload_len)
    }

    fn hdr_airtime(&self) -> Time {
        self.cfg
            .control_rate
            .frame_airtime_ns(HeaderTrailer::WIRE_LEN)
    }

    fn burst_airtime(&self, pkts: &[DataPkt], rate: cmap_phy::Rate) -> Time {
        pkts.iter()
            .map(|p| self.data_airtime(p.payload_len, rate))
            .sum()
    }

    // ---- sender path -----------------------------------------------------

    fn try_send(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.state != SState::Idle || self.in_flight.is_some() {
            return;
        }
        if self.cur.is_none() {
            // Window full and nothing repacked yet: arm the retransmission
            // timeout (Fig 6's blocking point).
            let window_pkts = self.cfg.n_window * self.cfg.n_vpkt;
            if self.window.is_full(window_pkts) && !self.window.has_rtx() {
                ctx.stats().bump(CounterId::CmapRtxStall);
                self.state = SState::RtxWait;
                self.sender_gen += 1;
                let payload = 1400; // τ is defined on nominal packets (§3.3)
                let lo = self.cfg.tau_min(payload);
                let hi = self.cfg.tau_max(payload).max(lo + 1);
                let wait = ctx.rng().gen_range(lo..hi);
                ctx.set_timer(wait, token(CLASS_RTX, self.sender_gen));
                return;
            }
            self.cur = if let Some((dst, pkts, rounds)) = self.window.pop_rtx() {
                let seq = self.window.alloc_seq(dst);
                ctx.stats().add(CounterId::CmapRtxVpkt, 1);
                let rate = self.rate_ctl.choose(dst, ctx.now(), ctx.rng());
                Some(CurVpkt {
                    dst,
                    seq,
                    pkts,
                    is_rtx: true,
                    rate,
                    rounds,
                })
            } else if self.window.is_full(self.cfg.n_window * self.cfg.n_vpkt) {
                return; // full window, rtx already queued elsewhere
            } else {
                let Some(first) = ctx.app_pop() else {
                    return; // no data; woken by on_packet_queued
                };
                let dst_node = first.dst;
                let dst = first.dst_mac;
                let mut pkts = vec![DataPkt {
                    flow: first.flow,
                    flow_seq: first.flow_seq,
                    payload_len: first.payload_len,
                }];
                while pkts.len() < self.cfg.n_vpkt {
                    match ctx.app_pop_to(dst_node) {
                        Some(p) => pkts.push(DataPkt {
                            flow: p.flow,
                            flow_seq: p.flow_seq,
                            payload_len: p.payload_len,
                        }),
                        None => break,
                    }
                }
                let seq = self.window.alloc_seq(dst);
                let rate = self.rate_ctl.choose(dst, ctx.now(), ctx.rng());
                Some(CurVpkt {
                    dst,
                    seq,
                    pkts,
                    is_rtx: false,
                    rate,
                    rounds: 0,
                })
            };
            if self.cur.is_none() {
                return;
            }
        }

        // Transmission decision process (§3.2).
        let dst = self.cur.as_ref().expect("set above").dst;
        match self.check_defer(ctx, dst) {
            Some(until) => {
                ctx.stats().bump(CounterId::CmapDefer);
                let now = ctx.now();
                let fallback = self.csma_fallback_active(now);
                if fallback {
                    ctx.stats().bump(CounterId::CmapCsmaFallback);
                }
                self.state = SState::Deferring;
                self.sender_gen += 1;
                // Jitter the re-check around t_deferwait (the prototype's
                // software-MAC latency was 0.5-2 ms and effectively random):
                // without it, a deferring sender whose rival's inter-vpkt
                // gap is shorter than a fixed t_deferwait loses every race
                // and starves.
                let jitter = ctx
                    .rng()
                    .gen_range(self.cfg.t_deferwait / 2..=3 * self.cfg.t_deferwait / 2);
                // Clamp: the ongoing list may hold a ghost end time from a
                // transmitter that died mid-burst; never sleep on it for
                // longer than max_defer_wait.
                let wait = (until.saturating_sub(now) + jitter).min(self.cfg.max_defer_wait);
                if ctx.trace_enabled() {
                    ctx.trace(TraceEvent::DeferDecision {
                        node: u32::try_from(ctx.node().index()).unwrap_or(u32::MAX),
                        dst: dst.node_index().unwrap_or(u16::MAX),
                        wait_ns: wait,
                        fallback,
                    });
                }
                ctx.set_timer(wait, token(CLASS_DEFER, self.sender_gen));
            }
            None => self.begin_vpkt(ctx),
        }
    }

    /// Returns the latest end time among conflicting ongoing transmissions,
    /// or `None` when transmission to `dst` may proceed now.
    fn check_defer(&self, ctx: &NodeCtx<'_>, dst: MacAddr) -> Option<Time> {
        self.check_defer_at(ctx.mac_addr(), dst, ctx.now())
    }

    /// §3.6: channel-access decision for a broadcast to the target set `v`:
    /// the transmission may proceed only if `me → v` is conflict-free for
    /// *every* intended receiver ("treated as a collection of unicast
    /// transmissions"). Returns the time to defer until, or `None` to send.
    ///
    /// The opportunistic-routing refinement (transmit if at least one
    /// forwarder is likely to receive, weighted by reception rates) is
    /// future work in the paper and is not implemented.
    pub fn check_defer_broadcast(
        &self,
        me: MacAddr,
        targets: &[MacAddr],
        now: Time,
    ) -> Option<Time> {
        targets
            .iter()
            .filter_map(|&v| self.check_defer_at(me, v, now))
            .max()
    }

    /// The §3.2 transmission decision against the conflict map, for a
    /// transmission `me → dst` contemplated at `now`.
    fn check_defer_at(&self, me: MacAddr, dst: MacAddr, now: Time) -> Option<Time> {
        let stale = self.csma_fallback_active(now);
        let mut worst: Option<Time> = None;
        for e in self.ongoing.iter_at(now) {
            if e.src == me {
                continue;
            }
            let rate_filter = self.cfg.rate_aware.then_some(e.rate);
            let conflict =
                // Stale conflict map: trust nothing, defer to every
                // overheard transmission (carrier-sense behaviour).
                stale
                // v must be neither sending nor receiving (§3.2)...
                || e.src == dst || e.dst == dst
                // ...nor may we blow away a reception addressed to us
                // (half-duplex radio).
                || e.dst == me
                // Defer patterns 1 and 2 against the conflict map.
                || self.defer.must_defer(dst, e.src, e.dst, now, rate_filter);
            if conflict {
                worst = Some(worst.map_or(e.until, |w: Time| w.max(e.until)));
            }
        }
        worst
    }

    fn begin_vpkt(&mut self, ctx: &mut NodeCtx<'_>) {
        let (dst, seq, count, burst_ns, rate) = {
            let cur = self.cur.as_ref().expect("begin_vpkt without vpkt");
            (
                cur.dst,
                cur.seq,
                cur.pkts.len() as u8,
                self.burst_airtime(&cur.pkts, cur.rate),
                cur.rate,
            )
        };
        let remaining = burst_ns + self.hdr_airtime(); // data + trailer
        let me = ctx.mac_addr();
        let tx_time_us = ns_to_us_ceil(remaining);
        let sent = ctx.transmit_with(self.cfg.control_rate, |buf| {
            compose::header_trailer(buf, FrameKind::CmapHeader, me, dst, tx_time_us, seq, count, rate);
        });
        if sent {
            self.in_flight = Some(InFlight::Header);
            self.state = SState::TxVpkt;
            ctx.stats().bump(CounterId::CmapTxVpkt);
            if let Some(dst_node) = dst.node_index() {
                let me = ctx.node();
                ctx.stats().vpkt_sent(me, dst_node as usize);
            }
        } else {
            // Radio race (e.g. our own ACK just started): retry shortly.
            ctx.stats().bump(CounterId::CmapTxBlocked);
            self.state = SState::Deferring;
            self.sender_gen += 1;
            ctx.set_timer(millis(1), token(CLASS_DEFER, self.sender_gen));
        }
    }

    fn send_data(&mut self, ctx: &mut NodeCtx<'_>, idx: usize) {
        let (dst, seq, p, rate) = {
            let cur = self.cur.as_ref().expect("send_data without vpkt");
            (cur.dst, cur.seq, cur.pkts[idx], cur.rate)
        };
        let me = ctx.mac_addr();
        let sent = ctx.transmit_with(rate, |buf| {
            compose::cmap_data(buf, me, dst, seq, idx as u8, p.flow, p.flow_seq, p.payload_len, 0xC5);
        });
        if sent {
            self.in_flight = Some(InFlight::Data { idx });
        } else {
            self.abort_vpkt(ctx);
        }
    }

    fn send_trailer(&mut self, ctx: &mut NodeCtx<'_>) {
        let (dst, tx_time_us, seq, count, rate) = {
            let cur = self.cur.as_ref().expect("send_trailer without vpkt");
            let total = 2 * self.hdr_airtime() + self.burst_airtime(&cur.pkts, cur.rate);
            (
                cur.dst,
                ns_to_us_ceil(total),
                cur.seq,
                cur.pkts.len() as u8,
                cur.rate,
            )
        };
        let me = ctx.mac_addr();
        let sent = ctx.transmit_with(self.cfg.control_rate, |buf| {
            compose::header_trailer(buf, FrameKind::CmapTrailer, me, dst, tx_time_us, seq, count, rate);
        });
        if sent {
            self.in_flight = Some(InFlight::Trailer);
        } else {
            self.abort_vpkt(ctx);
        }
    }

    /// Mid-virtual-packet transmit failure (should not happen; kept
    /// graceful): packets go back through the retransmission queue.
    fn abort_vpkt(&mut self, ctx: &mut NodeCtx<'_>) {
        ctx.stats().bump(CounterId::CmapVpktAbort);
        if let Some(cur) = self.cur.take() {
            self.window.push_sent(SentVpkt {
                dst: cur.dst,
                seq: cur.seq,
                pkts: cur.pkts,
                acked: 0,
                sent_at: ctx.now(),
                rate: cur.rate,
                rounds: cur.rounds,
            });
        }
        self.state = SState::Idle;
        self.try_send(ctx);
    }

    fn vpkt_complete(&mut self, ctx: &mut NodeCtx<'_>) {
        let cur = self.cur.take().expect("trailer done without vpkt");
        if cur.is_rtx {
            ctx.stats().bump(CounterId::CmapRtxVpktDone);
        }
        self.window.push_sent(SentVpkt {
            dst: cur.dst,
            seq: cur.seq,
            pkts: cur.pkts,
            acked: 0,
            sent_at: ctx.now(),
            rate: cur.rate,
            rounds: cur.rounds,
        });
        self.state = SState::AckWait;
        self.sender_gen += 1;
        ctx.set_timer(self.cfg.t_ackwait, token(CLASS_ACKWAIT, self.sender_gen));
    }

    fn enter_backoff(&mut self, ctx: &mut NodeCtx<'_>) {
        // Even with CW = 0 the prototype's software path added jittery
        // latency before the next virtual packet; this dither is what keeps
        // saturated senders from phase-locking (see `CmapConfig::sw_jitter`).
        let upper = if self.cw == 0 {
            self.cfg.sw_jitter
        } else {
            self.cw
        };
        if upper == 0 {
            self.state = SState::Idle;
            self.try_send(ctx);
            return;
        }
        self.state = SState::Backoff;
        self.sender_gen += 1;
        let wait = ctx.rng().gen_range(0..=upper);
        ctx.set_timer(wait, token(CLASS_BACKOFF, self.sender_gen));
    }

    /// Feed per-rate delivery outcomes to the rate controller (§3.5).
    fn drain_rate_feedback(&mut self, ctx: &mut NodeCtx<'_>) {
        for (dst, rate, acked, lost) in self.window.take_feedback() {
            self.rate_ctl.feedback(dst, rate, acked, lost, ctx.now());
        }
    }

    /// Fig 7: CW update from the loss rate reported in an ACK.
    fn update_cw(&mut self, ctx: &mut NodeCtx<'_>, loss: f64) {
        if !self.cfg.backoff_enabled {
            self.cw = 0;
            return;
        }
        if loss > self.cfg.l_backoff {
            self.cw = if self.cw == 0 {
                self.cfg.cw_start
            } else {
                (self.cw * 2).min(self.cfg.cw_max)
            };
            ctx.stats().bump(CounterId::CmapCwIncrease);
        } else {
            self.cw = 0;
        }
    }

    fn handle_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: MacAddr,
        base_vpkt_seq: u32,
        bitmaps: &[u32],
        loss: f64,
    ) {
        ctx.stats().bump(CounterId::CmapAckRx);
        self.consecutive_ack_timeouts = 0;
        let newly = self.window.on_ack(src, base_vpkt_seq, bitmaps);
        ctx.stats().add(CounterId::CmapPktsAcked, newly as u64);
        if newly > 0 && ctx.trace_enabled() {
            ctx.trace(TraceEvent::AckWindowSlide {
                node: u32::try_from(ctx.node().index()).unwrap_or(u32::MAX),
                peer: src.node_index().unwrap_or(u16::MAX),
                newly_acked: newly as u32,
            });
        }
        self.drain_rate_feedback(ctx);
        self.update_cw(ctx, loss);
        match self.state {
            SState::AckWait => {
                self.sender_gen += 1;
                self.enter_backoff(ctx);
            }
            SState::RtxWait if !self.window.is_full(self.cfg.n_window * self.cfg.n_vpkt) => {
                // The window opened up: abandon the timeout and keep going.
                self.sender_gen += 1;
                self.state = SState::Idle;
                self.try_send(ctx);
            }
            SState::Idle => self.try_send(ctx),
            _ => {}
        }
    }

    // ---- receiver path ---------------------------------------------------

    fn on_cmap_header(&mut self, ctx: &mut NodeCtx<'_>, h: &HeaderTrailer, info: RxInfo) {
        let until = info.end + micros(u64::from(h.tx_time_us));
        self.ongoing.note_header(h.src, h.dst, until, h.data_rate);
        self.tracker.note_activity(h.src, info.start, until);
        if h.dst == ctx.mac_addr() {
            let peer = self.peers.entry(h.src).or_default();
            peer.last_heard = info.end;
            // A restarted sender numbers virtual packets from zero again;
            // without this reset the cumulative-ACK window (which never
            // slides backwards) would ignore the reborn sequence space and
            // starve the sender forever.
            // Legitimate reordering spans at most the send window; twice
            // that is comfortably conservative.
            if peer
                .rx
                .looks_rebooted(h.vpkt_seq, 2 * self.cfg.n_window as u32)
            {
                ctx.stats().bump(CounterId::CmapPeerReset);
                peer.rx = PeerRx::new();
            }
            peer.rx.on_header(h.vpkt_seq, h.pkt_count, info.end);
            if let Some(src_node) = h.src.node_index() {
                let me = ctx.node();
                ctx.stats()
                    .vpkt_received(src_node as usize, me, h.vpkt_seq, false);
            }
            if !self.cfg.send_trailers {
                // No trailer will come: finalise off the header's schedule.
                let data_air = self.data_airtime(1400, h.data_rate).max(1);
                let wait = Time::from(h.pkt_count) * data_air + millis(1) / 2;
                self.pending_finalize.push_back((
                    h.src,
                    h.vpkt_seq,
                    h.pkt_count,
                    h.data_rate,
                    info.end,
                ));
                ctx.set_timer(wait, token(CLASS_VPKTEND, 0));
            }
        }
    }

    fn on_cmap_trailer(&mut self, ctx: &mut NodeCtx<'_>, t: &HeaderTrailer, info: RxInfo) {
        let now = ctx.now();
        self.ongoing.note_trailer(t.src, now);
        let span = micros(u64::from(t.tx_time_us));
        self.tracker
            .note_activity(t.src, info.end.saturating_sub(span), info.end);
        if t.dst != ctx.mac_addr() {
            return;
        }
        if let Some(src_node) = t.src.node_index() {
            let me = ctx.node();
            ctx.stats()
                .vpkt_received(src_node as usize, me, t.vpkt_seq, true);
        }
        let data_air = self.data_airtime(1400, t.data_rate).max(1);
        let peer = self.peers.entry(t.src).or_default();
        peer.last_heard = info.end;
        peer.rx.on_trailer(t.vpkt_seq, t.pkt_count);
        let fallback_t0 = info
            .start
            .saturating_sub(Time::from(t.pkt_count) * data_air);
        self.finalize_and_ack(
            ctx,
            t.src,
            t.vpkt_seq,
            t.pkt_count,
            t.data_rate,
            fallback_t0,
        );
    }

    /// Complete a virtual packet at the receiver: attribute per-packet
    /// losses to overheard concurrent transmitters (§3.1) and queue the
    /// cumulative ACK (§3.3). Triggered by the trailer, or by a timer when
    /// trailers are disabled.
    fn finalize_and_ack(
        &mut self,
        ctx: &mut NodeCtx<'_>,
        src: MacAddr,
        vpkt_seq: u32,
        pkt_count: u8,
        data_rate: cmap_phy::Rate,
        fallback_t0: Time,
    ) {
        let now = ctx.now();
        let data_air = self.data_airtime(1400, data_rate).max(1);
        let (bits, t0, first_finalize) = {
            let peer = self.peers.entry(src).or_default();
            let rec = peer.rx.record(vpkt_seq).copied().unwrap_or_default();
            (
                rec.bits,
                rec.data_start.unwrap_or(fallback_t0),
                peer.rx.mark_finalized(vpkt_seq),
            )
        };
        // Attribute losses only on the *first* finalisation of this virtual
        // packet: a duplicated or reordered trailer (or a late finalise
        // timer racing a trailer) must not double-count the same losses and
        // fabricate interferers.
        if first_finalize {
            // Judge concurrency over the whole virtual-packet span (not
            // packet by packet): activity knowledge is biased toward gaps,
            // and biased per-packet samples fabricate conflicts (see
            // InterfererTracker::concurrent_sources).
            let span_end = t0 + Time::from(pkt_count) * data_air;
            let concurrent = self.tracker.concurrent_sources(t0, span_end, 0.5, src);
            for x in concurrent {
                for i in 0..pkt_count {
                    let lost = bits & (1 << i) == 0;
                    self.tracker.record_pair(
                        src,
                        x,
                        lost,
                        data_rate,
                        now,
                        self.cfg.l_interf,
                        self.cfg.interferer_min_samples,
                        self.cfg.interferer_timeout,
                    );
                }
            }
        } else {
            ctx.stats().bump(CounterId::CmapDupFinalize);
        }
        let mut bitmaps = [0u32; cmap::MAX_ACK_WINDOW];
        let (base, bitmap_count, loss) = {
            let peer = self.peers.get_mut(&src).expect("created above");
            peer.rx.build_ack_into(
                vpkt_seq,
                self.cfg.n_window,
                self.cfg.n_vpkt as u8,
                &mut bitmaps,
            )
        };
        let mut il_entries = [NULL_ENTRY; cmap::Ack::MAX_IL_ENTRIES];
        let mut il_count = 0u8;
        if self.cfg.il_in_acks {
            self.tracker
                .for_each_entry_at(now, |source, interferer, source_rate| {
                    il_entries[il_count as usize] = cmap::InterfererEntry {
                        source,
                        interferer,
                        source_rate,
                    };
                    il_count += 1;
                    (il_count as usize) < cmap::Ack::MAX_IL_ENTRIES
                });
        }
        self.pending_acks.push_back(PendingAck {
            src: ctx.mac_addr(),
            dst: src,
            base_vpkt_seq: base,
            bitmap_count,
            bitmaps,
            loss_rate: cmap::Ack::scale_loss_rate(loss),
            il_count,
            il_entries,
        });
        self.rx_gen += 1;
        let turnaround = self.jittered_turnaround(ctx);
        ctx.set_timer(turnaround, token(CLASS_ACKSEND, self.rx_gen));
    }

    /// ACK turnaround with the prototype's software jitter: uniform in
    /// `ack_turnaround ± sw_jitter/2`, floored at 100 µs.
    fn jittered_turnaround(&mut self, ctx: &mut NodeCtx<'_>) -> Time {
        let half = self.cfg.sw_jitter / 2;
        let lo = self
            .cfg
            .ack_turnaround
            .saturating_sub(half)
            .max(micros(100));
        let hi = self.cfg.ack_turnaround + half;
        ctx.rng().gen_range(lo..=hi)
    }

    fn send_pending_ack(&mut self, ctx: &mut NodeCtx<'_>) {
        let Some(ack) = self.pending_acks.pop_front() else {
            return;
        };
        if self.in_flight.is_some() {
            ctx.stats().bump(CounterId::CmapAckBlocked);
            return;
        }
        let sent = ctx.transmit_with(self.cfg.control_rate, |buf| {
            compose::cmap_ack(
                buf,
                ack.src,
                ack.dst,
                ack.base_vpkt_seq,
                &ack.bitmaps[..ack.bitmap_count as usize],
                ack.loss_rate,
                &ack.il_entries[..ack.il_count as usize],
            );
        });
        if sent {
            self.in_flight = Some(InFlight::Ack);
            ctx.stats().bump(CounterId::CmapAckTx);
        } else {
            ctx.stats().bump(CounterId::CmapAckBlocked);
        }
    }

    /// Apply update rules 1 and 2 (§3.1) to entries advertised by
    /// receiver `r` — whether they arrived in a standalone broadcast or
    /// piggybacked on an (overheard) ACK.
    fn apply_il_entries<I>(&mut self, ctx: &mut NodeCtx<'_>, r: MacAddr, entries: I)
    where
        I: IntoIterator<Item = cmap::InterfererEntry>,
    {
        let me = ctx.mac_addr();
        let expires = ctx.now() + self.cfg.defer_entry_timeout;
        let mut any = false;
        for e in entries {
            any = true;
            if e.source == me {
                // Update rule 1: (r : q -> *).
                self.defer
                    .apply_rule1(r, e.interferer, e.source_rate, expires);
            }
            if e.interferer == me {
                // Update rule 2: (* : q -> r).
                self.defer.apply_rule2(r, e.source, e.source_rate, expires);
            }
        }
        if any {
            // Any interferer-list reception counts as fresh conflict-map
            // information for the staleness clock, whether or not an entry
            // names us: the network's map machinery is demonstrably alive.
            self.last_map_refresh = ctx.now();
        }
    }

    // ---- cmap-ckpt/v2 ----------------------------------------------------

    /// Parse a [`Mac::save_state`] blob into this (identically-configured)
    /// instance; typed-error core of [`Mac::load_state`].
    fn load_ckpt(&mut self, bytes: &[u8]) -> Result<(), cmap_sim::CkptError> {
        use crate::ckpt_util::{get_addr, get_rate};
        use crate::vpkt::{PeerRx, SendWindow};
        use cmap_sim::ckpt::{CkptError, CkptReader};
        let mut r = CkptReader::new(bytes)?;
        self.state = match r.u8()? {
            0 => SState::Idle,
            1 => SState::Deferring,
            2 => SState::TxVpkt,
            3 => SState::AckWait,
            4 => SState::Backoff,
            5 => SState::RtxWait,
            other => return Err(CkptError::Malformed(format!("sender state tag {other}"))),
        };
        self.cur = if r.bool()? {
            let dst = get_addr(&mut r)?;
            let seq = r.u32()?;
            let mut pkts = Vec::new();
            for _ in 0..r.len()? {
                pkts.push(DataPkt {
                    flow: r.u16()?,
                    flow_seq: r.u32()?,
                    payload_len: r.len()?,
                });
            }
            let is_rtx = r.bool()?;
            let rate = get_rate(&mut r)?;
            let rounds = r.u32()?;
            Some(CurVpkt {
                dst,
                seq,
                pkts,
                is_rtx,
                rate,
                rounds,
            })
        } else {
            None
        };
        self.window = SendWindow::ckpt_load(&mut r)?;
        self.defer = DeferTable::ckpt_load(&mut r)?;
        self.ongoing = OngoingList::ckpt_load(&mut r)?;
        self.tracker = InterfererTracker::ckpt_load(&mut r)?;
        self.peers.clear();
        for _ in 0..r.len()? {
            let addr = get_addr(&mut r)?;
            let rx = PeerRx::ckpt_load(&mut r)?;
            let last_heard = r.u64()?;
            if self
                .peers
                .insert(addr, PeerState { rx, last_heard })
                .is_some()
            {
                return Err(CkptError::Malformed(format!("duplicate peer {addr}")));
            }
        }
        self.cw = r.u64()?;
        self.sender_gen = r.u64()?;
        self.rx_gen = r.u64()?;
        self.bcast_gen = r.u64()?;
        self.consecutive_ack_timeouts = r.u32()?;
        self.last_map_refresh = r.u64()?;
        self.pending_acks.clear();
        for _ in 0..r.len()? {
            let src = get_addr(&mut r)?;
            let dst = get_addr(&mut r)?;
            let base_vpkt_seq = r.u32()?;
            let mut bitmaps = Vec::new();
            for _ in 0..r.len()? {
                bitmaps.push(r.u32()?);
            }
            let loss_rate = r.u8()?;
            let mut il_entries = Vec::new();
            for _ in 0..r.len()? {
                il_entries.push(cmap::InterfererEntry {
                    source: get_addr(&mut r)?,
                    interferer: get_addr(&mut r)?,
                    source_rate: get_rate(&mut r)?,
                });
            }
            if bitmaps.len() > cmap::MAX_ACK_WINDOW {
                return Err(CkptError::Malformed(format!(
                    "pending-ack bitmap count {}",
                    bitmaps.len()
                )));
            }
            if il_entries.len() > cmap::Ack::MAX_IL_ENTRIES {
                return Err(CkptError::Malformed(format!(
                    "pending-ack IL count {}",
                    il_entries.len()
                )));
            }
            let mut ack = PendingAck {
                src,
                dst,
                base_vpkt_seq,
                bitmap_count: bitmaps.len() as u8,
                bitmaps: [0u32; cmap::MAX_ACK_WINDOW],
                loss_rate,
                il_count: il_entries.len() as u8,
                il_entries: [NULL_ENTRY; cmap::Ack::MAX_IL_ENTRIES],
            };
            ack.bitmaps[..bitmaps.len()].copy_from_slice(&bitmaps);
            ack.il_entries[..il_entries.len()].copy_from_slice(&il_entries);
            self.pending_acks.push_back(ack);
        }
        self.pending_finalize.clear();
        for _ in 0..r.len()? {
            let src = get_addr(&mut r)?;
            let seq = r.u32()?;
            let count = r.u8()?;
            let rate = get_rate(&mut r)?;
            let t0 = r.u64()?;
            self.pending_finalize.push_back((src, seq, count, rate, t0));
        }
        self.in_flight = match r.u8()? {
            0 => None,
            1 => Some(InFlight::Header),
            2 => Some(InFlight::Data { idx: r.len()? }),
            3 => Some(InFlight::Trailer),
            4 => Some(InFlight::Ack),
            5 => Some(InFlight::Broadcast),
            other => return Err(CkptError::Malformed(format!("in-flight tag {other}"))),
        };
        let rc_blob = r.bytes()?;
        self.rate_ctl
            .load_state(rc_blob)
            .map_err(CkptError::Mismatch)?;
        r.expect_end()
    }

    fn broadcast_tick(&mut self, ctx: &mut NodeCtx<'_>) {
        let now = ctx.now();
        self.tracker.decay();
        let evicted = self.tracker.prune(now, self.cfg.broadcast_period * 2)
            + self.defer.prune(now)
            + self.ongoing.prune(now);
        if evicted > 0 {
            ctx.stats()
                .add(CounterId::CmapExpiredEvicted, evicted as u64);
        }
        let peers_before = self.peers.len();
        let peer_cutoff = now.saturating_sub(self.cfg.peer_state_timeout);
        self.peers.retain(|_, p| p.last_heard >= peer_cutoff);
        let peers_evicted = peers_before - self.peers.len();
        if peers_evicted > 0 {
            ctx.stats()
                .add(CounterId::CmapPeerEvicted, peers_evicted as u64);
        }
        let scratch = &mut self.il_scratch;
        scratch.clear();
        self.tracker
            .for_each_entry_at(now, |source, interferer, source_rate| {
                scratch.push(cmap::InterfererEntry {
                    source,
                    interferer,
                    source_rate,
                });
                scratch.len() < cmap::InterfererList::MAX_ENTRIES
            });
        if !self.il_scratch.is_empty() && self.in_flight.is_none() {
            let me = ctx.mac_addr();
            let entries = &self.il_scratch;
            let sent = ctx.transmit_with(self.cfg.control_rate, |buf| {
                compose::interferer_list(buf, me, entries);
            });
            if sent {
                self.in_flight = Some(InFlight::Broadcast);
                ctx.stats().bump(CounterId::CmapIlBroadcast);
            } else {
                ctx.stats().bump(CounterId::CmapIlBlocked);
            }
        }
        // Re-arm with jitter to avoid network-wide phase lock.
        let jitter = ctx.rng().gen_range(0..self.cfg.broadcast_period / 4);
        ctx.set_timer(
            self.cfg.broadcast_period + jitter,
            token(CLASS_BCAST, self.bcast_gen),
        );
    }
}

impl Mac for CmapMac {
    fn on_start(&mut self, ctx: &mut NodeCtx<'_>) {
        let jitter = ctx.rng().gen_range(0..self.cfg.broadcast_period);
        ctx.set_timer(jitter, token(CLASS_BCAST, self.bcast_gen));
        self.try_send(ctx);
    }

    fn on_restart(&mut self, ctx: &mut NodeCtx<'_>) {
        // Crash-restart: volatile protocol state is gone. Conflict-map
        // knowledge, the send window and per-peer reassembly all reset to
        // boot values; the app queue (upper layer) survives in the world.
        self.state = SState::Idle;
        self.cur = None;
        self.window = SendWindow::new();
        self.defer = DeferTable::new();
        self.ongoing = OngoingList::new();
        self.tracker = InterfererTracker::new();
        self.peers.clear();
        self.cw = 0;
        self.pending_acks.clear();
        self.pending_finalize.clear();
        self.in_flight = None;
        self.consecutive_ack_timeouts = 0;
        // The staleness clock restarts at the reboot instant: the map is
        // empty (maximally conservative already), so the CSMA fallback
        // should wait for post-reboot evidence, not fire off pre-crash age.
        self.last_map_refresh = ctx.now();
        // Bump, never reset: timers armed before the crash must come back
        // stale, and gens only ever grow.
        self.sender_gen += 1;
        self.rx_gen += 1;
        self.bcast_gen += 1;
        ctx.stats().bump(CounterId::CmapRestart);
        let jitter = ctx.rng().gen_range(0..self.cfg.broadcast_period);
        ctx.set_timer(jitter, token(CLASS_BCAST, self.bcast_gen));
        self.try_send(ctx);
    }

    fn on_timer(&mut self, ctx: &mut NodeCtx<'_>, tok: u64) {
        let (class, gen) = untoken(tok);
        match class {
            CLASS_BCAST if gen == self.bcast_gen => self.broadcast_tick(ctx),
            CLASS_ACKSEND => {
                if gen == self.rx_gen {
                    self.send_pending_ack(ctx);
                } else if !self.pending_acks.is_empty() {
                    // Superseded timer; newest timer will cover the queue.
                }
            }
            CLASS_VPKTEND => {
                if let Some((src, seq, count, rate, t0)) = self.pending_finalize.pop_front() {
                    self.finalize_and_ack(ctx, src, seq, count, rate, t0);
                }
            }
            CLASS_ACKWAIT if gen == self.sender_gen && self.state == SState::AckWait => {
                // No ACK within t_ackwait; CW unchanged (§3.4: no backoff
                // update on mere ACK absence). Count it towards the
                // stale-map carrier-sense fallback, though.
                self.consecutive_ack_timeouts = self.consecutive_ack_timeouts.saturating_add(1);
                ctx.stats().bump(CounterId::CmapAckTimeout);
                // Trace the moment the streak crosses into the conservative
                // carrier-sense regime (the map-staleness leg may engage it
                // later; DeferDecision.fallback reflects the live state).
                if self.consecutive_ack_timeouts == self.cfg.csma_fallback_after
                    && self.csma_fallback_active(ctx.now())
                    && ctx.trace_enabled()
                {
                    ctx.trace(TraceEvent::FallbackToCsma {
                        node: u32::try_from(ctx.node().index()).unwrap_or(u32::MAX),
                        timeout_streak: self.consecutive_ack_timeouts,
                    });
                }
                self.enter_backoff(ctx);
            }
            CLASS_BACKOFF if gen == self.sender_gen && self.state == SState::Backoff => {
                self.state = SState::Idle;
                self.try_send(ctx);
            }
            CLASS_DEFER if gen == self.sender_gen && self.state == SState::Deferring => {
                self.state = SState::Idle;
                self.try_send(ctx);
            }
            CLASS_RTX if gen == self.sender_gen && self.state == SState::RtxWait => {
                let (requeued, gave_up) = self
                    .window
                    .repack_for_rtx(self.cfg.n_vpkt, self.cfg.max_rtx_rounds);
                ctx.stats().add(CounterId::CmapRtxPkt, requeued as u64);
                if gave_up > 0 {
                    ctx.stats().add(CounterId::CmapRtxGiveUp, gave_up as u64);
                }
                self.drain_rate_feedback(ctx);
                self.state = SState::Idle;
                self.try_send(ctx);
            }
            _ => {} // stale token
        }
    }

    fn on_rx_frame(&mut self, ctx: &mut NodeCtx<'_>, frame: &FrameView<'_>, info: RxInfo) {
        match frame {
            FrameView::CmapHeader(h) => {
                let h = h.to_body();
                self.on_cmap_header(ctx, &h, info);
            }
            FrameView::CmapTrailer(t) => {
                let t = t.to_body();
                self.on_cmap_trailer(ctx, &t, info);
            }
            FrameView::CmapData(d) => {
                self.tracker.note_activity(d.src(), info.start, info.end);
                if d.dst() == ctx.mac_addr() {
                    let peer = self.peers.entry(d.src()).or_default();
                    peer.last_heard = info.end;
                    peer.rx.on_data(d.vpkt_seq(), d.index());
                    ctx.deliver(d.flow(), d.flow_seq());
                } else {
                    // Missed the header? Keep the ongoing entry alive long
                    // enough to cover a couple more packets.
                    let guard = 2 * self.data_airtime(d.payload().len(), info.rate);
                    self.ongoing
                        .note_data(d.src(), d.dst(), ctx.now(), guard, info.rate);
                }
            }
            FrameView::CmapAck(a) => {
                self.tracker.note_activity(a.src(), info.start, info.end);
                if a.il_count() > 0 {
                    self.apply_il_entries(ctx, a.src(), a.il_entries());
                }
                if a.dst() == ctx.mac_addr() {
                    let mut bitmaps = [0u32; cmap::MAX_ACK_WINDOW];
                    let n = a.bitmap_count();
                    for (i, slot) in bitmaps.iter_mut().enumerate().take(n) {
                        *slot = a.bitmap(i);
                    }
                    self.handle_ack(
                        ctx,
                        a.src(),
                        a.base_vpkt_seq(),
                        &bitmaps[..n],
                        a.loss_rate_fraction(),
                    );
                }
            }
            FrameView::CmapInterfererList(il) => {
                self.tracker.note_activity(il.src(), info.start, info.end);
                self.apply_il_entries(ctx, il.src(), il.entries());
            }
            FrameView::Dot11Data(_) | FrameView::Dot11Ack(_) => {
                // Foreign MAC's frames: energy was already modelled; CMAP
                // cannot decode their semantics (paper note 1).
            }
        }
    }

    fn on_tx_done(&mut self, ctx: &mut NodeCtx<'_>) {
        match self.in_flight.take() {
            Some(InFlight::Header) => self.send_data(ctx, 0),
            Some(InFlight::Data { idx }) => {
                let count = self.cur.as_ref().map_or(0, |c| c.pkts.len());
                if idx + 1 < count {
                    self.send_data(ctx, idx + 1);
                } else if self.cfg.send_trailers {
                    self.send_trailer(ctx);
                } else {
                    self.vpkt_complete(ctx);
                }
            }
            Some(InFlight::Trailer) => self.vpkt_complete(ctx),
            Some(InFlight::Ack) => {
                if !self.pending_acks.is_empty() {
                    self.rx_gen += 1;
                    let turnaround = self.jittered_turnaround(ctx);
                    ctx.set_timer(turnaround, token(CLASS_ACKSEND, self.rx_gen));
                }
                // The sender path may have been blocked by this ACK.
                if self.state == SState::Idle {
                    self.try_send(ctx);
                }
            }
            Some(InFlight::Broadcast) => {
                if self.state == SState::Idle {
                    self.try_send(ctx);
                }
            }
            None => {
                ctx.stats().bump(CounterId::CmapUnexpectedTxDone);
            }
        }
    }

    fn on_packet_queued(&mut self, ctx: &mut NodeCtx<'_>) {
        if self.state == SState::Idle {
            self.try_send(ctx);
        }
    }

    fn as_any(&self) -> &dyn std::any::Any {
        self
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        use crate::ckpt_util::{put_addr, put_rate};
        let mut w = cmap_sim::ckpt::CkptWriter::new();
        w.u8(match self.state {
            SState::Idle => 0,
            SState::Deferring => 1,
            SState::TxVpkt => 2,
            SState::AckWait => 3,
            SState::Backoff => 4,
            SState::RtxWait => 5,
        });
        match &self.cur {
            None => w.bool(false),
            Some(cur) => {
                w.bool(true);
                put_addr(&mut w, cur.dst);
                w.u32(cur.seq);
                w.len(cur.pkts.len());
                for p in &cur.pkts {
                    w.u16(p.flow);
                    w.u32(p.flow_seq);
                    w.len(p.payload_len);
                }
                w.bool(cur.is_rtx);
                put_rate(&mut w, cur.rate);
                w.u32(cur.rounds);
            }
        }
        self.window.ckpt_save(&mut w);
        self.defer.ckpt_save(&mut w);
        self.ongoing.ckpt_save(&mut w);
        self.tracker.ckpt_save(&mut w);
        w.len(self.peers.len());
        for (&addr, peer) in &self.peers {
            put_addr(&mut w, addr);
            peer.rx.ckpt_save(&mut w);
            w.u64(peer.last_heard);
        }
        w.u64(self.cw);
        w.u64(self.sender_gen);
        w.u64(self.rx_gen);
        w.u64(self.bcast_gen);
        w.u32(self.consecutive_ack_timeouts);
        w.u64(self.last_map_refresh);
        w.len(self.pending_acks.len());
        for a in &self.pending_acks {
            put_addr(&mut w, a.src);
            put_addr(&mut w, a.dst);
            w.u32(a.base_vpkt_seq);
            w.len(a.bitmap_count as usize);
            for &bm in &a.bitmaps[..a.bitmap_count as usize] {
                w.u32(bm);
            }
            w.u8(a.loss_rate);
            w.len(a.il_count as usize);
            for e in &a.il_entries[..a.il_count as usize] {
                put_addr(&mut w, e.source);
                put_addr(&mut w, e.interferer);
                put_rate(&mut w, e.source_rate);
            }
        }
        w.len(self.pending_finalize.len());
        for &(src, seq, count, rate, t0) in &self.pending_finalize {
            put_addr(&mut w, src);
            w.u32(seq);
            w.u8(count);
            put_rate(&mut w, rate);
            w.u64(t0);
        }
        match self.in_flight {
            None => w.u8(0),
            Some(InFlight::Header) => w.u8(1),
            Some(InFlight::Data { idx }) => {
                w.u8(2);
                w.len(idx);
            }
            Some(InFlight::Trailer) => w.u8(3),
            Some(InFlight::Ack) => w.u8(4),
            Some(InFlight::Broadcast) => w.u8(5),
        }
        let mut rc = Vec::new();
        self.rate_ctl.save_state(&mut rc);
        w.bytes(&rc);
        out.extend_from_slice(&w.finish());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        self.load_ckpt(bytes).map_err(|e| e.to_string())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_mac80211::{DcfConfig, DcfMac};
    use cmap_sim::time::secs;
    use cmap_sim::{MediumBuilder, PhyConfig, World};

    fn world_from_rss(n: usize, rss: &[(usize, usize, f64)], seed: u64) -> World {
        let phy = PhyConfig::default();
        let mut gains = vec![f64::NEG_INFINITY; n * n];
        for &(a, b, rss_dbm) in rss {
            gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        }
        let delays = vec![100u64; n * n];
        let medium = MediumBuilder::new(&phy)
            .gains_db(n, &gains, &delays)
            .build();
        World::builder().medium(medium).phy(phy).seed(seed).build()
    }

    fn sym(a: usize, b: usize, rss: f64) -> [(usize, usize, f64); 2] {
        [(a, b, rss), (b, a, rss)]
    }

    fn tput(w: &World, flow: u16, from: u64, to: u64) -> f64 {
        w.stats()
            .flow_throughput_mbps(flow, w.flow(flow).payload_len, from, to)
    }

    fn cmap_all(w: &mut World, n: usize, cfg: &CmapConfig) {
        for node in 0..n {
            w.set_mac(node, Box::new(CmapMac::new(cfg.clone())));
        }
    }

    #[test]
    fn single_link_throughput_comparable_to_dcf() {
        // §4.2 calibration: CMAP 5.04 vs 802.11 5.07 Mbit/s on one link.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));

        let mut w = world_from_rss(2, &rss, 1);
        let f = w.add_flow(0, 1, 1400);
        cmap_all(&mut w, 2, &CmapConfig::default());
        w.run_until(secs(10));
        let cmap = tput(&w, f, secs(2), secs(10));

        let mut w2 = world_from_rss(2, &rss, 2);
        let f2 = w2.add_flow(0, 1, 1400);
        w2.set_mac(0, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w2.set_mac(1, Box::new(DcfMac::new(DcfConfig::status_quo())));
        w2.run_until(secs(10));
        let dcf = tput(&w2, f2, secs(2), secs(10));

        assert!((4.6..6.0).contains(&cmap), "CMAP single link {cmap}");
        assert!(
            (cmap - dcf).abs() < 0.6,
            "CMAP {cmap} vs DCF {dcf}: not a fair comparison"
        );
    }

    #[test]
    fn exposed_terminals_run_concurrently() {
        // Fig 12's headline: exposed configuration, CMAP ~2x the status quo.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -75.0)); // senders hear each other
        rss.extend(sym(0, 3, -93.0)); // receivers barely hear the other tx
        rss.extend(sym(2, 1, -93.0));
        rss.extend(sym(1, 3, -95.0));

        let mut w = world_from_rss(4, &rss, 3);
        let f1 = w.add_flow(0, 1, 1400);
        let f2 = w.add_flow(2, 3, 1400);
        cmap_all(&mut w, 4, &CmapConfig::default());
        w.run_until(secs(10));
        let agg = tput(&w, f1, secs(2), secs(10)) + tput(&w, f2, secs(2), secs(10));
        assert!(agg > 8.0, "CMAP exposed aggregate only {agg} Mbit/s");
        // Senders should essentially never defer to each other here.
        let defers = w.stats().counter(CounterId::CmapDefer);
        let vpkts = w.stats().counter(CounterId::CmapTxVpkt);
        assert!(defers < vpkts / 4, "{defers} defers for {vpkts} vpkts");
    }

    #[test]
    fn conflicting_pairs_learn_to_defer() {
        // Both receivers are blasted by the other sender: concurrent
        // transmission loses. CMAP must converge to sequential operation
        // comparable to carrier sense.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -65.0));
        rss.extend(sym(0, 3, -63.0)); // strong cross-interference
        rss.extend(sym(2, 1, -63.0));
        rss.extend(sym(1, 3, -80.0));

        let mut w = world_from_rss(4, &rss, 4);
        let f1 = w.add_flow(0, 1, 1400);
        let f2 = w.add_flow(2, 3, 1400);
        cmap_all(&mut w, 4, &CmapConfig::default());
        w.run_until(secs(20));
        // Measure after convergence.
        let agg = tput(&w, f1, secs(8), secs(20)) + tput(&w, f2, secs(8), secs(20));
        assert!(
            (3.2..6.4).contains(&agg),
            "CMAP conflicting aggregate {agg} (want about the single-link rate)"
        );
        // The defer machinery must actually be engaging.
        assert!(
            w.stats().counter(CounterId::CmapDefer) > 20,
            "defers: {}",
            w.stats().counter(CounterId::CmapDefer)
        );
        assert!(w.stats().counter(CounterId::CmapIlBroadcast) > 0);
        // Senders' defer tables hold entries.
        let d0 = w
            .mac_ref(0)
            .as_any()
            .downcast_ref::<CmapMac>()
            .unwrap()
            .defer_table()
            .len_at(w.now());
        let d2 = w
            .mac_ref(2)
            .as_any()
            .downcast_ref::<CmapMac>()
            .unwrap()
            .defer_table()
            .len_at(w.now());
        assert!(d0 + d2 > 0, "no defer entries learned");
    }

    #[test]
    fn hidden_terminals_survive_via_backoff() {
        // Senders out of range of each other; both receivers hear both
        // senders (Fig 11(c)). The defer machinery cannot engage at the
        // senders, so the loss-rate backoff must prevent collapse (§5.5).
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 3, -62.0));
        rss.extend(sym(2, 1, -62.0));
        rss.extend(sym(1, 3, -70.0));

        let mut w = world_from_rss(4, &rss, 5);
        let f1 = w.add_flow(0, 1, 1400);
        let f2 = w.add_flow(2, 3, 1400);
        cmap_all(&mut w, 4, &CmapConfig::default());
        w.run_until(secs(20));
        let agg = tput(&w, f1, secs(8), secs(20)) + tput(&w, f2, secs(8), secs(20));
        // The paper's hidden-terminal result: comparable to the status quo,
        // i.e. a meaningful fraction of the single-pair rate rather than
        // zero.
        assert!(agg > 1.5, "hidden-terminal aggregate collapsed: {agg}");
        assert!(
            w.stats().counter(CounterId::CmapCwIncrease) > 0,
            "backoff never engaged"
        );
    }

    #[test]
    fn stop_and_wait_window_is_no_better() {
        // Fig 12's ablation: windowed ACKs matter in exposed configurations
        // because ACKs collide at the senders. win=1 must not beat win=8.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 2, -75.0));
        rss.extend(sym(0, 3, -90.0)); // some cross-noise to threaten ACKs
        rss.extend(sym(2, 1, -90.0));
        rss.extend(sym(1, 3, -95.0));

        let run = |cfg: CmapConfig, seed| {
            let mut w = world_from_rss(4, &rss, seed);
            let f1 = w.add_flow(0, 1, 1400);
            let f2 = w.add_flow(2, 3, 1400);
            cmap_all(&mut w, 4, &cfg);
            w.run_until(secs(10));
            tput(&w, f1, secs(2), secs(10)) + tput(&w, f2, secs(2), secs(10))
        };
        let win8 = run(CmapConfig::default(), 6);
        let win1 = run(CmapConfig::default().stop_and_wait(), 7);
        assert!(
            win1 <= win8 + 0.5,
            "stop-and-wait {win1} should not beat windowed {win8}"
        );
        assert!(win8 > 8.0, "windowed exposed aggregate {win8}");
    }

    #[test]
    fn broadcast_decision_is_conjunction_over_targets() {
        use cmap_wire::MacAddr;
        let a = |i: u16| MacAddr::from_node_index(i);
        let (me, v1, v2, x, y) = (a(0), a(1), a(2), a(3), a(4));
        let mut mac = CmapMac::new(CmapConfig::default());
        // Ongoing transmission x -> y until t=1000.
        mac.ongoing.note_header(x, y, 1000, cmap_phy::Rate::R6);
        // Conflict known only for v2: (v2 : x -> *).
        mac.defer.apply_rule1(v2, x, cmap_phy::Rate::R6, 10_000);

        // Unicast-style checks via the broadcast API with one target.
        assert_eq!(mac.check_defer_broadcast(me, &[v1], 0), None);
        assert_eq!(mac.check_defer_broadcast(me, &[v2], 0), Some(1000));
        // Broadcast to both: the v2 conflict forces deferral (section 3.6).
        assert_eq!(mac.check_defer_broadcast(me, &[v1, v2], 0), Some(1000));
        // Empty target set trivially proceeds.
        assert_eq!(mac.check_defer_broadcast(me, &[], 0), None);
        // After the ongoing transmission ends, all clear.
        assert_eq!(mac.check_defer_broadcast(me, &[v1, v2], 1000), None);
        // A target that is itself receiving is busy regardless of the map.
        assert_eq!(mac.check_defer_broadcast(me, &[y], 0), Some(1000));
    }

    #[test]
    fn rate_adaptation_finds_the_right_rate_per_link() {
        use crate::rate_control::ThroughputRate;
        // Strong link (-60 dBm: 34 dB SNR supports 54 Mbit/s) and a weak
        // link (-86 dBm: 8 dB SNR supports ~12 but not 24): the adapter
        // must climb on the first and hold low on the second.
        let run = |rss_dbm: f64, seed| {
            let mut rss = Vec::new();
            rss.extend(sym(0, 1, rss_dbm));
            let mut w = world_from_rss(2, &rss, seed);
            let f = w.add_flow(0, 1, 1400);
            let cfg = CmapConfig::default();
            for node in 0..2 {
                w.set_mac(
                    node,
                    Box::new(CmapMac::with_rate_controller(
                        cfg.clone(),
                        Box::new(ThroughputRate::full_ladder()),
                    )),
                );
            }
            w.run_until(secs(12));
            tput(&w, f, secs(6), secs(12))
        };
        let strong = run(-60.0, 50);
        let weak = run(-86.0, 51);
        // 54 Mbit/s with per-vpkt overheads lands well above 20 Mbit/s.
        assert!(strong > 15.0, "strong-link adapted throughput {strong}");
        // The weak link must not collapse chasing high rates, and cannot
        // exceed what ~12-18 Mbit/s delivers.
        assert!((2.0..14.0).contains(&weak), "weak-link throughput {weak}");
        assert!(strong > 2.0 * weak);
    }

    #[test]
    fn multi_destination_sender_interleaves_flows() {
        // One sender, two destinations (the mesh source pattern): both
        // flows must make progress and the per-destination vpkt sequence
        // spaces must not interfere.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(0, 2, -60.0));
        rss.extend(sym(1, 2, -70.0));
        let mut w = world_from_rss(3, &rss, 40);
        let f1 = w.add_flow(0, 1, 1400);
        let f2 = w.add_flow(0, 2, 1400);
        cmap_all(&mut w, 3, &CmapConfig::default());
        w.run_until(secs(10));
        let t1 = tput(&w, f1, secs(2), secs(10));
        let t2 = tput(&w, f2, secs(2), secs(10));
        // The two flows share one radio: each gets roughly half.
        assert!(t1 > 1.5 && t2 > 1.5, "{t1} / {t2}");
        assert!((t1 - t2).abs() < 1.5, "unfair: {t1} vs {t2}");
        assert_eq!(w.stats().flow(f1).duplicates, 0);
        assert_eq!(w.stats().flow(f2).duplicates, 0);
    }

    #[test]
    fn no_trailer_variant_still_delivers() {
        // Ablation: without trailers the receiver finalises off the header
        // timer; on a clean link throughput must stay close to the default.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let run = |cfg: CmapConfig, seed| {
            let mut w = world_from_rss(2, &rss, seed);
            let f = w.add_flow(0, 1, 1400);
            cmap_all(&mut w, 2, &cfg);
            w.run_until(secs(8));
            let t = tput(&w, f, secs(2), secs(8));
            let trailers = w.stats().vpkt_stats(0, 1).map_or(0, |v| v.trailer_count());
            (t, trailers)
        };
        let (t_def, trl_def) = run(CmapConfig::default(), 31);
        let (t_no, trl_no) = run(CmapConfig::default().without_trailers(), 32);
        assert!(trl_def > 50, "default run sent no trailers?");
        assert_eq!(trl_no, 0, "no-trailer run still produced trailers");
        assert!(
            t_no > 0.85 * t_def,
            "no-trailer throughput {t_no} vs default {t_def}"
        );
    }

    #[test]
    fn backoff_ablation_hurts_hidden_terminals() {
        // Without the loss-rate backoff, hidden senders blast through each
        // other; §5.5's mechanism should visibly help.
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        rss.extend(sym(2, 3, -60.0));
        rss.extend(sym(0, 3, -62.0));
        rss.extend(sym(2, 1, -62.0));
        rss.extend(sym(1, 3, -70.0));
        let run = |cfg: CmapConfig, seed| {
            let mut w = world_from_rss(4, &rss, seed);
            let f1 = w.add_flow(0, 1, 1400);
            let f2 = w.add_flow(2, 3, 1400);
            cmap_all(&mut w, 4, &cfg);
            w.run_until(secs(15));
            tput(&w, f1, secs(6), secs(15)) + tput(&w, f2, secs(6), secs(15))
        };
        let with = run(CmapConfig::default(), 33);
        let without = run(CmapConfig::default().without_backoff(), 34);
        assert!(
            with > without * 0.9,
            "backoff should not hurt: with {with}, without {without}"
        );
        // The ablated variant must show the pathology at least mildly.
        assert!(
            without < 5.0,
            "hidden blast unexpectedly healthy: {without}"
        );
    }

    #[test]
    fn stale_map_falls_back_to_carrier_sense() {
        use cmap_wire::MacAddr;
        let a = |i: u16| MacAddr::from_node_index(i);
        let (me, dst, x, y) = (a(0), a(1), a(2), a(3));
        let now = millis(20_000);
        let mut mac = CmapMac::new(CmapConfig::default());
        // Unrelated ongoing transmission x -> y; the conflict map is empty,
        // so the §3.2 decision alone would transmit.
        mac.ongoing
            .note_header(x, y, now + millis(2), cmap_phy::Rate::R6);
        // Recently refreshed map: no fallback even with many ACK timeouts.
        mac.consecutive_ack_timeouts = 10;
        mac.last_map_refresh = now - millis(100);
        assert!(!mac.csma_fallback_active(now));
        assert_eq!(mac.check_defer_broadcast(me, &[dst], now), None);
        // Stale map + repeated ACK timeouts: defer to any overheard
        // transmission, exactly like carrier sense.
        mac.last_map_refresh = 0;
        assert!(mac.csma_fallback_active(now));
        assert_eq!(
            mac.check_defer_broadcast(me, &[dst], now),
            Some(now + millis(2))
        );
        // An ACK getting through resets the streak and restores map trust.
        mac.consecutive_ack_timeouts = 0;
        assert!(!mac.csma_fallback_active(now));
        assert_eq!(mac.check_defer_broadcast(me, &[dst], now), None);
        // Ablated variant never falls back.
        let mut ablated = CmapMac::new(CmapConfig::default().without_csma_fallback());
        ablated
            .ongoing
            .note_header(x, y, now + millis(2), cmap_phy::Rate::R6);
        ablated.consecutive_ack_timeouts = 10;
        assert!(!ablated.csma_fallback_active(now));
        assert_eq!(ablated.check_defer_broadcast(me, &[dst], now), None);
    }

    #[test]
    fn duplicated_frames_do_not_wedge_or_fabricate_conflicts() {
        // Satellite regression for the dup/reordered-ACK path: a fault plan
        // that duplicates 8% of deliveries must not wedge the window, run
        // attribution twice, or learn phantom conflicts on a clean link.
        use cmap_sim::FaultPlan;
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 9);
        let f = w.add_flow(0, 1, 1400);
        cmap_all(&mut w, 2, &CmapConfig::default());
        w.install_faults(FaultPlan {
            dup_frame_prob: 0.08,
            ..FaultPlan::clean()
        });
        w.run_until(secs(8));
        assert_eq!(w.watchdog_violations(), 0);
        assert!(
            w.stats().counter(CounterId::CmapDupFinalize) > 0,
            "duplicate-finalise path never exercised"
        );
        assert!(
            w.stats().flow(f).duplicates > 0,
            "duplicate injection inactive"
        );
        // Progress continues to the end of the run.
        let late = tput(&w, f, secs(6), secs(8));
        assert!(late > 3.0, "link wedged under duplicates: {late}");
        // No phantom interferers on a two-node link.
        let mac = w.mac_ref(0).as_any().downcast_ref::<CmapMac>().unwrap();
        assert_eq!(mac.defer_table().len_at(w.now()), 0);
    }

    #[test]
    fn sender_crash_restart_recovers_the_flow() {
        // The sender reboots mid-run: its sequence space restarts at zero
        // and all conflict-map state is lost. The receiver must detect the
        // reboot (cmap.peer_reset) and the flow must recover.
        use cmap_sim::faults::Outage;
        use cmap_sim::FaultPlan;
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 10);
        let f = w.add_flow(0, 1, 1400);
        cmap_all(&mut w, 2, &CmapConfig::default());
        let mut plan = FaultPlan::clean();
        plan.churn.push(Outage {
            node: cmap_sim::NodeId::new(0),
            down_at: secs(3),
            up_at: secs(4),
        });
        w.install_faults(plan);
        w.run_until(secs(9));
        assert_eq!(w.watchdog_violations(), 0);
        assert!(
            w.stats().counter(CounterId::CmapRestart) >= 1,
            "restart never ran"
        );
        assert!(
            w.stats().counter(CounterId::CmapPeerReset) >= 1,
            "receiver never detected the sender reboot"
        );
        let late = tput(&w, f, secs(5), secs(9));
        assert!(late > 3.0, "flow did not recover after restart: {late}");
    }

    #[test]
    fn ack_contains_loss_feedback_and_dup_suppression_works() {
        let mut rss = Vec::new();
        rss.extend(sym(0, 1, -60.0));
        let mut w = world_from_rss(2, &rss, 8);
        let f = w.add_flow(0, 1, 1400);
        cmap_all(&mut w, 2, &CmapConfig::default());
        w.run_until(secs(5));
        // Clean link: essentially no retransmissions, no duplicates, CW 0.
        assert_eq!(w.stats().flow(f).duplicates, 0);
        let mac = w.mac_ref(0).as_any().downcast_ref::<CmapMac>().unwrap();
        assert_eq!(mac.contention_window(), 0);
        assert!(w.stats().counter(CounterId::CmapAckTx) > 50);
    }
}
