//! # cmap-core — the CMAP link layer (Vutukuru, Jamieson, Balakrishnan, NSDI 2008)
//!
//! CMAP (Conflict Maps) is a reactive channel-access protocol that increases
//! the number of successful concurrent transmissions in a wireless network.
//! Instead of deferring whenever the carrier is busy (CSMA's proactive
//! guess), CMAP nodes transmit optimistically, observe which *pairs* of
//! transmissions actually conflict — from packet losses attributed to
//! overheard concurrent transmitters — and build a distributed **conflict
//! map** consulted before each transmission.
//!
//! This crate implements the full design of §2–§3:
//!
//! * the **defer table** with update rules 1 & 2 and defer patterns 1 & 2
//!   ([`defer_table`]),
//! * receiver-side **interferer lists**: loss attribution against overheard
//!   transmission windows, the `l_interf` threshold, periodic broadcast
//!   ([`interferer`]),
//! * the **ongoing-transmissions list** maintained from overheard headers,
//!   trailers and data packets ([`ongoing`]),
//! * **virtual packets** (header + `N_vpkt` data packets + trailer, §4.1)
//!   with the **windowed cumulative-ACK retransmission protocol** of §3.3
//!   (send window `N_window`, bitmap ACKs, repacked retransmissions,
//!   τ_min/τ_max timeouts) ([`vpkt`]),
//! * the **loss-rate backoff** of §3.4 (CW doubling above `l_backoff`,
//!   reset below), and
//! * the [`CmapMac`] tying it all together as a [`cmap_sim::Mac`].
//!
//! All protocol constants default to the paper's values ([`CmapConfig`]).

mod ckpt_util;
pub mod config;
pub mod defer_table;
pub mod interferer;
pub mod mac;
pub mod ongoing;
pub mod rate_control;
pub mod vpkt;

pub use config::CmapConfig;
pub use defer_table::{DeferEntry, DeferTable};
pub use interferer::InterfererTracker;
pub use mac::CmapMac;
pub use ongoing::OngoingList;
pub use rate_control::{FixedRate, RateController, ThroughputRate};
