//! Virtual packets and the windowed ACK/retransmission protocol (§3.3, §4.1).
//!
//! Sender side ([`SendWindow`]): virtual packets enter the send window when
//! their trailer goes out and stay until every data packet in them is
//! covered by a cumulative ACK bitmap. When the window fills, the sender
//! times out for `U(τ_min, τ_max)` and *repacks* all still-unacknowledged
//! data packets into fresh virtual packets for retransmission — sequence
//! numbers are per-(sender, destination) so receivers can spot wholly-lost
//! virtual packets.
//!
//! Receiver side ([`PeerRx`]): per-sender reception records over the last
//! window of virtual packets, from which the cumulative bitmap ACK and the
//! reported loss rate (the backoff signal, §3.4) are built.

use std::collections::BTreeMap;

use cmap_phy::Rate;
use cmap_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use cmap_sim::time::Time;
use cmap_wire::cmap::MAX_ACK_WINDOW;
use cmap_wire::MacAddr;

use crate::ckpt_util::{get_addr, get_rate, put_addr, put_rate};

fn put_pkt(w: &mut CkptWriter, p: &DataPkt) {
    w.u16(p.flow);
    w.u32(p.flow_seq);
    w.len(p.payload_len);
}

fn get_pkt(r: &mut CkptReader<'_>) -> Result<DataPkt, CkptError> {
    Ok(DataPkt {
        flow: r.u16()?,
        flow_seq: r.u32()?,
        payload_len: r.len()?,
    })
}

/// One application data packet riding in a virtual packet.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct DataPkt {
    /// Flow the packet belongs to.
    pub flow: u16,
    /// End-to-end sequence number.
    pub flow_seq: u32,
    /// Payload length in bytes.
    pub payload_len: usize,
}

/// A transmitted virtual packet awaiting acknowledgement.
#[derive(Debug, Clone)]
pub struct SentVpkt {
    /// Destination node address.
    pub dst: MacAddr,
    /// Per-destination virtual-packet sequence number.
    pub seq: u32,
    /// The data packets, by index.
    pub pkts: Vec<DataPkt>,
    /// Bitmap of acknowledged indices.
    pub acked: u32,
    /// When the trailer finished transmitting.
    pub sent_at: Time,
    /// Bit-rate the data packets were sent at (per-rate feedback for §3.5
    /// rate adaptation).
    pub rate: Rate,
    /// How many retransmission rounds the packets in this virtual packet
    /// have already been through (0 for a fresh transmission).
    pub rounds: u32,
}

impl SentVpkt {
    /// Bitmap with one bit per carried packet.
    pub fn full_mask(&self) -> u32 {
        if self.pkts.len() >= 32 {
            u32::MAX
        } else {
            (1u32 << self.pkts.len()) - 1
        }
    }

    /// True once every packet is acknowledged.
    pub fn fully_acked(&self) -> bool {
        self.acked & self.full_mask() == self.full_mask()
    }

    /// Unacknowledged packets, in index order.
    pub fn unacked(&self) -> impl Iterator<Item = &DataPkt> {
        self.pkts
            .iter()
            .enumerate()
            .filter(move |(i, _)| self.acked & (1 << i) == 0)
            .map(|(_, p)| p)
    }
}

/// Sender-side send window across all destinations.
#[derive(Debug, Default)]
pub struct SendWindow {
    next_seq: BTreeMap<MacAddr, u32>,
    sent: Vec<SentVpkt>,
    /// Repacked virtual packets awaiting retransmission, FIFO, with the
    /// retransmission-round count they will carry.
    rtx: std::collections::VecDeque<(MacAddr, Vec<DataPkt>, u32)>,
    /// Per-rate delivery feedback accumulated by `on_ack`/`repack_for_rtx`:
    /// `(dst, rate, packets acked, packets given up)`.
    feedback: Vec<(MacAddr, Rate, usize, usize)>,
}

impl SendWindow {
    /// Empty window.
    pub fn new() -> SendWindow {
        SendWindow::default()
    }

    /// Allocate the next virtual-packet sequence number towards `dst`.
    pub fn alloc_seq(&mut self, dst: MacAddr) -> u32 {
        let c = self.next_seq.entry(dst).or_insert(0);
        let seq = *c;
        *c += 1;
        seq
    }

    /// Track a fully transmitted virtual packet.
    pub fn push_sent(&mut self, vpkt: SentVpkt) {
        debug_assert!(!vpkt.pkts.is_empty());
        self.sent.push(vpkt);
    }

    /// Virtual packets with unacknowledged data.
    pub fn outstanding(&self) -> usize {
        self.sent.len()
    }

    /// Unacknowledged *data packets* across the window. §4.2 sizes the send
    /// window in data packets ("8 virtual packets, or 256 data packets"): a
    /// virtual packet with one lost packet must consume one slot, not a
    /// whole virtual packet's worth — otherwise a few percent of residual
    /// loss fills the window after a handful of virtual packets and the
    /// sender spends most of its life in τ-scale retransmission stalls.
    pub fn outstanding_pkts(&self) -> usize {
        self.sent
            .iter()
            .map(|v| v.pkts.len() - (v.acked & v.full_mask()).count_ones() as usize)
            .sum()
    }

    /// True when the unacknowledged-packet count has reached the window
    /// limit (`n_window × n_vpkt` data packets).
    pub fn is_full(&self, window_pkts: usize) -> bool {
        self.outstanding_pkts() >= window_pkts
    }

    /// Apply a cumulative ACK from `receiver`. Returns the number of data
    /// packets newly acknowledged.
    pub fn on_ack(&mut self, receiver: MacAddr, base_seq: u32, bitmaps: &[u32]) -> usize {
        let mut newly = 0usize;
        for v in &mut self.sent {
            if v.dst != receiver {
                continue;
            }
            let Some(off) = v.seq.checked_sub(base_seq) else {
                continue;
            };
            if let Some(&bm) = bitmaps.get(off as usize) {
                let fresh = bm & !v.acked & v.full_mask();
                let n = fresh.count_ones() as usize;
                if n > 0 {
                    newly += n;
                    self.feedback.push((v.dst, v.rate, n, 0));
                }
                v.acked |= bm & v.full_mask();
            }
        }
        self.sent.retain(|v| !v.fully_acked());
        newly
    }

    /// Window-timeout path: move every unacknowledged packet out of the
    /// window, repacked into fresh virtual packets of up to `n_vpkt`
    /// packets each (per destination, preserving order). Packets that have
    /// already been through `max_rounds` retransmission rounds are dropped
    /// instead of requeued — unbounded retransmission to a dead receiver
    /// would pin the send window forever. Returns `(requeued, given_up)`
    /// packet counts.
    pub fn repack_for_rtx(&mut self, n_vpkt: usize, max_rounds: u32) -> (usize, usize) {
        let mut per_dst: Vec<(MacAddr, Vec<DataPkt>, u32)> = Vec::new();
        let mut given_up = 0usize;
        for v in self.sent.drain(..) {
            let pkts: Vec<DataPkt> = v.unacked().copied().collect();
            if pkts.is_empty() {
                continue;
            }
            self.feedback.push((v.dst, v.rate, 0, pkts.len()));
            if v.rounds >= max_rounds {
                given_up += pkts.len();
                continue;
            }
            // Group by (destination, rounds) so a packet's round count
            // survives the repack intact.
            let rounds = v.rounds + 1;
            match per_dst
                .iter_mut()
                .find(|(d, _, r)| *d == v.dst && *r == rounds)
            {
                Some((_, list, _)) => list.extend(pkts),
                None => per_dst.push((v.dst, pkts, rounds)),
            }
        }
        let mut total = 0;
        for (dst, pkts, rounds) in per_dst {
            total += pkts.len();
            for chunk in pkts.chunks(n_vpkt.max(1)) {
                self.rtx.push_back((dst, chunk.to_vec(), rounds));
            }
        }
        (total, given_up)
    }

    /// Next repacked virtual packet to retransmit, if any:
    /// `(dst, packets, retransmission rounds consumed)`.
    pub fn pop_rtx(&mut self) -> Option<(MacAddr, Vec<DataPkt>, u32)> {
        self.rtx.pop_front()
    }

    /// Whether repacked retransmissions are pending.
    pub fn has_rtx(&self) -> bool {
        !self.rtx.is_empty()
    }

    /// Outstanding virtual packets (diagnostics).
    pub fn sent_vpkts(&self) -> &[SentVpkt] {
        &self.sent
    }

    /// Drain the per-rate delivery feedback accumulated since the last call
    /// (input for a [`RateController`](crate::rate_control::RateController)).
    pub fn take_feedback(&mut self) -> Vec<(MacAddr, Rate, usize, usize)> {
        std::mem::take(&mut self.feedback)
    }

    /// Append the full window state (sequence counters, outstanding virtual
    /// packets, retransmission queue, pending rate feedback) to a
    /// `cmap-ckpt/v2` checkpoint.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.next_seq.len());
        for (&dst, &seq) in &self.next_seq {
            put_addr(w, dst);
            w.u32(seq);
        }
        w.len(self.sent.len());
        for v in &self.sent {
            put_addr(w, v.dst);
            w.u32(v.seq);
            w.len(v.pkts.len());
            for p in &v.pkts {
                put_pkt(w, p);
            }
            w.u32(v.acked);
            w.u64(v.sent_at);
            put_rate(w, v.rate);
            w.u32(v.rounds);
        }
        w.len(self.rtx.len());
        for (dst, pkts, rounds) in &self.rtx {
            put_addr(w, *dst);
            w.len(pkts.len());
            for p in pkts {
                put_pkt(w, p);
            }
            w.u32(*rounds);
        }
        w.len(self.feedback.len());
        for &(dst, rate, acked, lost) in &self.feedback {
            put_addr(w, dst);
            put_rate(w, rate);
            w.len(acked);
            w.len(lost);
        }
    }

    /// Rebuild a window from [`SendWindow::ckpt_save`] bytes.
    pub fn ckpt_load(r: &mut CkptReader<'_>) -> Result<SendWindow, CkptError> {
        let mut win = SendWindow::new();
        for _ in 0..r.len()? {
            let dst = get_addr(r)?;
            let seq = r.u32()?;
            if win.next_seq.insert(dst, seq).is_some() {
                return Err(CkptError::Malformed(format!("duplicate seq counter {dst}")));
            }
        }
        for _ in 0..r.len()? {
            let dst = get_addr(r)?;
            let seq = r.u32()?;
            let mut pkts = Vec::new();
            for _ in 0..r.len()? {
                pkts.push(get_pkt(r)?);
            }
            win.sent.push(SentVpkt {
                dst,
                seq,
                pkts,
                acked: r.u32()?,
                sent_at: r.u64()?,
                rate: get_rate(r)?,
                rounds: r.u32()?,
            });
        }
        for _ in 0..r.len()? {
            let dst = get_addr(r)?;
            let mut pkts = Vec::new();
            for _ in 0..r.len()? {
                pkts.push(get_pkt(r)?);
            }
            let rounds = r.u32()?;
            win.rtx.push_back((dst, pkts, rounds));
        }
        for _ in 0..r.len()? {
            let dst = get_addr(r)?;
            let rate = get_rate(r)?;
            let acked = r.len()?;
            let lost = r.len()?;
            win.feedback.push((dst, rate, acked, lost));
        }
        Ok(win)
    }
}

/// Receiver-side record of one virtual packet.
#[derive(Debug, Clone, Copy, Default)]
pub struct RxVpkt {
    /// Bitmap of received data-packet indices.
    pub bits: u32,
    /// Count announced by header/trailer, when one was received.
    pub expected: Option<u8>,
    /// End of the header frame (start of the data burst), when heard.
    pub data_start: Option<Time>,
}

/// Receiver-side state for one sender addressing us.
#[derive(Debug, Default)]
pub struct PeerRx {
    records: BTreeMap<u32, RxVpkt>,
    highest: Option<u32>,
    /// Virtual packets already finalised (loss attribution done); a
    /// duplicated or reordered trailer must not run attribution twice.
    finalized: std::collections::BTreeSet<u32>,
    /// Highest `upto` an ACK was built for: duplicated/reordered trailers
    /// must never slide the cumulative-ACK window backwards.
    last_ack_upto: Option<u32>,
}

impl PeerRx {
    /// Empty per-sender state.
    pub fn new() -> PeerRx {
        PeerRx::default()
    }

    fn touch(&mut self, seq: u32) -> &mut RxVpkt {
        self.highest = Some(self.highest.map_or(seq, |h| h.max(seq)));
        self.records.entry(seq).or_default()
    }

    /// Header received: the data burst starts at `data_start` and will
    /// carry `count` packets.
    pub fn on_header(&mut self, seq: u32, count: u8, data_start: Time) {
        let r = self.touch(seq);
        r.expected = Some(count);
        r.data_start = Some(data_start);
    }

    /// Data packet `idx` of `seq` received.
    pub fn on_data(&mut self, seq: u32, idx: u8) {
        self.touch(seq).bits |= 1 << idx;
    }

    /// Trailer received: the count is (re)learned even if the header died.
    pub fn on_trailer(&mut self, seq: u32, count: u8) {
        let r = self.touch(seq);
        r.expected.get_or_insert(count);
    }

    /// Record for a virtual packet, if any.
    pub fn record(&self, seq: u32) -> Option<&RxVpkt> {
        self.records.get(&seq)
    }

    /// Highest virtual-packet sequence heard from this sender.
    pub fn highest(&self) -> Option<u32> {
        self.highest
    }

    /// First finalisation of `seq` returns `true`; repeats (duplicated or
    /// reordered trailers / finalise timers) return `false` so callers can
    /// skip non-idempotent work such as interference attribution.
    pub fn mark_finalized(&mut self, seq: u32) -> bool {
        self.finalized.insert(seq)
    }

    /// A crashed-and-restarted sender begins numbering virtual packets from
    /// zero again. Frames can only be reordered within a send window, so a
    /// sequence arriving more than `window` below the highest ever seen is
    /// a reboot, not reordering — the caller should discard this state.
    pub fn looks_rebooted(&self, seq: u32, window: u32) -> bool {
        self.highest.is_some_and(|h| seq.saturating_add(window) < h)
    }

    /// Build the cumulative ACK covering the last `n_window` virtual
    /// packets ending at `upto`: `(base_seq, bitmaps, loss_rate)`.
    ///
    /// Sequence numbers in the span that were never heard at all count as
    /// fully lost (`default_expected` packets each) — the sender numbers
    /// virtual packets consecutively per destination, so a hole is a lost
    /// virtual packet, not an artefact.
    pub fn build_ack(
        &mut self,
        upto: u32,
        n_window: usize,
        default_expected: u8,
    ) -> (u32, Vec<u32>, f64) {
        let mut out = [0u32; MAX_ACK_WINDOW];
        let (base, n, loss) = self.build_ack_into(upto, n_window, default_expected, &mut out);
        (base, out[..n as usize].to_vec(), loss)
    }

    /// Allocation-free core of [`PeerRx::build_ack`]: bitmaps are written
    /// into `out`, returning `(base_seq, bitmap_count, loss_rate)`.
    pub fn build_ack_into(
        &mut self,
        upto: u32,
        n_window: usize,
        default_expected: u8,
        out: &mut [u32; MAX_ACK_WINDOW],
    ) -> (u32, u8, f64) {
        let n_window = n_window.clamp(1, MAX_ACK_WINDOW);
        // A reordered trailer for an old virtual packet must not regress
        // the window: always ACK up to the newest sequence ever finalised.
        let upto = self.last_ack_upto.map_or(upto, |last| upto.max(last));
        self.last_ack_upto = Some(upto);
        let base = (upto + 1).saturating_sub(n_window as u32);
        let mut count = 0u8;
        let (mut expected_total, mut got_total) = (0u64, 0u64);
        for seq in base..=upto {
            let bits = match self.records.get(&seq) {
                Some(r) => {
                    let expected = u64::from(r.expected.unwrap_or(default_expected));
                    let got = u64::from(r.bits.count_ones()).min(expected);
                    expected_total += expected;
                    got_total += got;
                    r.bits
                }
                None => {
                    expected_total += u64::from(default_expected);
                    0
                }
            };
            out[count as usize] = bits;
            count += 1;
        }
        // Prune records that fell out of every future window.
        let cutoff = base;
        self.records = self.records.split_off(&cutoff);
        self.finalized = self.finalized.split_off(&cutoff);
        let loss = if expected_total == 0 {
            0.0
        } else {
            1.0 - got_total as f64 / expected_total as f64
        };
        (base, count, loss)
    }

    /// Append the per-sender reception state (reception records, finalised
    /// set, ACK-window cursor) to a `cmap-ckpt/v2` checkpoint.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.records.len());
        for (&seq, rec) in &self.records {
            w.u32(seq);
            w.u32(rec.bits);
            match rec.expected {
                None => w.bool(false),
                Some(v) => {
                    w.bool(true);
                    w.u8(v);
                }
            }
            match rec.data_start {
                None => w.bool(false),
                Some(t) => {
                    w.bool(true);
                    w.u64(t);
                }
            }
        }
        match self.highest {
            None => w.bool(false),
            Some(h) => {
                w.bool(true);
                w.u32(h);
            }
        }
        w.len(self.finalized.len());
        for &seq in &self.finalized {
            w.u32(seq);
        }
        match self.last_ack_upto {
            None => w.bool(false),
            Some(u) => {
                w.bool(true);
                w.u32(u);
            }
        }
    }

    /// Rebuild per-sender reception state from [`PeerRx::ckpt_save`] bytes.
    pub fn ckpt_load(r: &mut CkptReader<'_>) -> Result<PeerRx, CkptError> {
        let mut rx = PeerRx::new();
        for _ in 0..r.len()? {
            let seq = r.u32()?;
            let bits = r.u32()?;
            let expected = if r.bool()? { Some(r.u8()?) } else { None };
            let data_start = if r.bool()? { Some(r.u64()?) } else { None };
            if rx
                .records
                .insert(
                    seq,
                    RxVpkt {
                        bits,
                        expected,
                        data_start,
                    },
                )
                .is_some()
            {
                return Err(CkptError::Malformed(format!("duplicate rx record {seq}")));
            }
        }
        rx.highest = if r.bool()? { Some(r.u32()?) } else { None };
        for _ in 0..r.len()? {
            let seq = r.u32()?;
            if !rx.finalized.insert(seq) {
                return Err(CkptError::Malformed(format!("duplicate finalized {seq}")));
            }
        }
        rx.last_ack_upto = if r.bool()? { Some(r.u32()?) } else { None };
        Ok(rx)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    fn pkt(seq: u32) -> DataPkt {
        DataPkt {
            flow: 0,
            flow_seq: seq,
            payload_len: 1400,
        }
    }

    fn sent(dst: MacAddr, seq: u32, n: usize) -> SentVpkt {
        SentVpkt {
            dst,
            seq,
            pkts: (0..n as u32).map(pkt).collect(),
            acked: 0,
            sent_at: 0,
            rate: Rate::R6,
            rounds: 0,
        }
    }

    #[test]
    fn seq_allocation_is_per_destination() {
        let mut w = SendWindow::new();
        assert_eq!(w.alloc_seq(a(1)), 0);
        assert_eq!(w.alloc_seq(a(1)), 1);
        assert_eq!(w.alloc_seq(a(2)), 0);
        assert_eq!(w.alloc_seq(a(1)), 2);
    }

    #[test]
    fn ack_clears_fully_acked_vpkts() {
        let mut w = SendWindow::new();
        w.push_sent(sent(a(1), 0, 32));
        w.push_sent(sent(a(1), 1, 32));
        assert_eq!(w.outstanding(), 2);
        // Full bitmap for vpkt 0, half for vpkt 1.
        let newly = w.on_ack(a(1), 0, &[u32::MAX, 0x0000_FFFF]);
        assert_eq!(newly, 32 + 16);
        assert_eq!(w.outstanding(), 1);
        // Duplicate ACK adds nothing.
        assert_eq!(w.on_ack(a(1), 0, &[u32::MAX, 0x0000_FFFF]), 0);
        // Completing vpkt 1.
        assert_eq!(w.on_ack(a(1), 0, &[0, u32::MAX]), 16);
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    fn ack_from_wrong_receiver_ignored() {
        let mut w = SendWindow::new();
        w.push_sent(sent(a(1), 0, 8));
        assert_eq!(w.on_ack(a(2), 0, &[u32::MAX]), 0);
        assert_eq!(w.outstanding(), 1);
    }

    #[test]
    fn ack_base_offsets_respected() {
        let mut w = SendWindow::new();
        w.push_sent(sent(a(1), 5, 8));
        // Bitmap index 2 covers seq 5 when base is 3.
        assert_eq!(w.on_ack(a(1), 3, &[0, 0, 0xFF]), 8);
        assert_eq!(w.outstanding(), 0);
    }

    #[test]
    fn partial_vpkt_masks() {
        let v = sent(a(1), 0, 5);
        assert_eq!(v.full_mask(), 0b11111);
        let mut v = v;
        v.acked = 0b10101;
        assert!(!v.fully_acked());
        let unacked: Vec<u32> = v.unacked().map(|p| p.flow_seq).collect();
        assert_eq!(unacked, vec![1, 3]);
        v.acked = 0b11111;
        assert!(v.fully_acked());
    }

    #[test]
    fn repack_collects_unacked_in_order() {
        let mut w = SendWindow::new();
        let mut v0 = sent(a(1), 0, 4);
        v0.acked = 0b0011; // packets 2,3 unacked
        let mut v1 = sent(a(1), 1, 4);
        v1.pkts = (10..14).map(pkt).collect();
        v1.acked = 0b1010; // packets 0,2 unacked (flow seqs 10, 12)
        w.push_sent(v0);
        w.push_sent(v1);
        let (n, gave_up) = w.repack_for_rtx(3, 8);
        assert_eq!(n, 4);
        assert_eq!(gave_up, 0);
        assert_eq!(w.outstanding(), 0);
        let (dst, first, rounds) = w.pop_rtx().unwrap();
        assert_eq!(dst, a(1));
        assert_eq!(rounds, 1);
        assert_eq!(
            first.iter().map(|p| p.flow_seq).collect::<Vec<_>>(),
            vec![2, 3, 10]
        );
        let (_, second, _) = w.pop_rtx().unwrap();
        assert_eq!(
            second.iter().map(|p| p.flow_seq).collect::<Vec<_>>(),
            vec![12]
        );
        assert!(w.pop_rtx().is_none());
    }

    #[test]
    fn repack_gives_up_after_max_rounds() {
        let mut w = SendWindow::new();
        let mut tired = sent(a(1), 0, 4);
        tired.rounds = 2; // already retransmitted twice
        let fresh = sent(a(1), 1, 4);
        w.push_sent(tired);
        w.push_sent(fresh);
        let (requeued, gave_up) = w.repack_for_rtx(32, 2);
        assert_eq!((requeued, gave_up), (4, 4));
        let (_, pkts, rounds) = w.pop_rtx().unwrap();
        assert_eq!(pkts.len(), 4);
        assert_eq!(rounds, 1);
        assert!(w.pop_rtx().is_none());
        // The given-up packets still show as losses in the rate feedback.
        let lost: usize = w.take_feedback().iter().map(|&(_, _, _, l)| l).sum();
        assert_eq!(lost, 8);
    }

    #[test]
    fn rounds_survive_multiple_repacks() {
        let mut w = SendWindow::new();
        w.push_sent(sent(a(1), 0, 4));
        for round in 1..=3u32 {
            let (requeued, gave_up) = w.repack_for_rtx(32, 3);
            assert_eq!((requeued, gave_up), (4, 0), "round {round}");
            let (dst, pkts, rounds) = w.pop_rtx().unwrap();
            assert_eq!(rounds, round);
            let mut v = sent(dst, round, 4);
            v.pkts = pkts;
            v.rounds = rounds;
            w.push_sent(v);
        }
        // Fourth timeout: the packets have exhausted their rounds.
        let (requeued, gave_up) = w.repack_for_rtx(32, 3);
        assert_eq!((requeued, gave_up), (0, 4));
        assert!(w.pop_rtx().is_none());
    }

    #[test]
    fn finalize_is_idempotent_per_vpkt() {
        let mut r = PeerRx::new();
        r.on_header(0, 4, 100);
        assert!(r.mark_finalized(0), "first finalisation runs attribution");
        assert!(!r.mark_finalized(0), "duplicate trailer must not");
        // Pruning forgets old sequences without reviving them inside the
        // still-covered window.
        for seq in 1..20u32 {
            r.on_header(seq, 4, 100);
            r.mark_finalized(seq);
        }
        let _ = r.build_ack(19, 8, 4);
        assert!(!r.mark_finalized(19), "in-window state survives the prune");
    }

    #[test]
    fn reboot_detection_distinguishes_reordering() {
        let mut r = PeerRx::new();
        assert!(!r.looks_rebooted(0, 32), "fresh peer: nothing to compare");
        r.on_header(100, 4, 0);
        // Reordering within a few windows is normal.
        assert!(!r.looks_rebooted(95, 32));
        assert!(!r.looks_rebooted(68, 32));
        // A jump far below the highest sequence means the sender rebooted.
        assert!(r.looks_rebooted(0, 32));
        assert!(r.looks_rebooted(67, 32));
    }

    #[test]
    fn ack_window_never_slides_backwards() {
        let mut r = PeerRx::new();
        for seq in 0..=10u32 {
            r.on_header(seq, 2, 0);
            r.on_data(seq, 0);
            r.on_data(seq, 1);
        }
        let (base_new, _, _) = r.build_ack(10, 4, 2);
        assert_eq!(base_new, 7);
        // A reordered trailer for vpkt 3 arrives late: the ACK must still
        // cover the newest window, not regress to [0, 3].
        let (base_old, bitmaps, _) = r.build_ack(3, 4, 2);
        assert_eq!(base_old, 7);
        assert_eq!(bitmaps.len(), 4);
    }

    #[test]
    fn receiver_bitmap_and_loss_rate() {
        let mut r = PeerRx::new();
        // vpkt 0: full; vpkt 1: half; vpkt 2: missing entirely; vpkt 3:
        // trailer only.
        r.on_header(0, 4, 100);
        for i in 0..4 {
            r.on_data(0, i);
        }
        r.on_header(1, 4, 200);
        r.on_data(1, 0);
        r.on_data(1, 1);
        r.on_header(3, 4, 400);
        r.on_trailer(3, 4);
        let (base, bitmaps, loss) = r.build_ack(3, 4, 4);
        assert_eq!(base, 0);
        assert_eq!(bitmaps, vec![0b1111, 0b0011, 0, 0]);
        // expected 16, got 6 -> loss 10/16.
        assert!((loss - 10.0 / 16.0).abs() < 1e-9, "{loss}");
    }

    #[test]
    fn ack_window_slides_and_prunes() {
        let mut r = PeerRx::new();
        for seq in 0..20u32 {
            r.on_header(seq, 2, Time::from(seq) * 100);
            r.on_data(seq, 0);
            r.on_data(seq, 1);
        }
        let (base, bitmaps, loss) = r.build_ack(19, 8, 2);
        assert_eq!(base, 12);
        assert_eq!(bitmaps.len(), 8);
        assert!(bitmaps.iter().all(|&b| b == 0b11));
        assert!(loss.abs() < 1e-9);
        // Old records pruned.
        assert!(r.record(5).is_none());
        assert!(r.record(12).is_some());
    }

    #[test]
    fn feedback_accounts_acks_and_losses() {
        let mut w = SendWindow::new();
        w.push_sent(sent(a(1), 0, 8));
        w.push_sent(sent(a(1), 1, 8));
        w.on_ack(a(1), 0, &[0b1111, 0]); // 4 of vpkt 0 acked
        let (n, _) = w.repack_for_rtx(32, 8); // 4 + 8 lost
        assert_eq!(n, 12);
        let fb = w.take_feedback();
        let acked: usize = fb.iter().map(|&(_, _, a, _)| a).sum();
        let lost: usize = fb.iter().map(|&(_, _, _, l)| l).sum();
        assert_eq!((acked, lost), (4, 12));
        assert!(w.take_feedback().is_empty(), "drained");
    }

    #[test]
    fn early_sequences_clamp_base_to_zero() {
        let mut r = PeerRx::new();
        r.on_header(1, 3, 0);
        r.on_data(1, 2);
        let (base, bitmaps, _) = r.build_ack(1, 8, 3);
        assert_eq!(base, 0);
        assert_eq!(bitmaps.len(), 2);
        assert_eq!(bitmaps[1], 0b100);
    }
}
