//! The defer table: each node's slice of the network-wide conflict map.
//!
//! A node `u`'s defer table holds entries of two shapes (§3.1):
//!
//! * `(v : x → ∗)` — added by **update rule 1** when `u` appears as the
//!   *source* in receiver `v`'s interferer list: sending to `v` while `x`
//!   transmits to anyone loses too many packets, so defer.
//! * `(∗ : x → v)` — added by **update rule 2** when `u` appears as the
//!   *interferer* in `v`'s list for source `x`: transmitting to *anyone*
//!   while `x → v` is in progress destroys `v`'s reception, so defer.
//!
//! Before a transmission to `v`, the node scans the ongoing-transmission
//! list; a conflict exists if any ongoing `p → q` matches **defer pattern
//! 1** `(∗ : p → q)` or **defer pattern 2** `(v : p → ∗)` (§3.2).
//!
//! Entries carry an expiry (refreshed by each broadcast that re-asserts
//! them) and, for the §3.5 extension, the bit-rate they were learned at.

use std::collections::BTreeMap;

use cmap_phy::Rate;
use cmap_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use cmap_sim::time::Time;
use cmap_wire::MacAddr;

use crate::ckpt_util::{get_addr, get_rate, put_addr, put_rate};

/// One defer-table entry.
///
/// `Ord` so the table can live in a `BTreeMap`: `entries_at` feeds
/// diagnostics and tests, and its order must be seed-independent.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum DeferEntry {
    /// `(dest : src → ∗)`: defer transmissions to `dest` while `src` is
    /// transmitting to anyone (update rule 1 / defer pattern 2).
    DestWhileSrcAny {
        /// Our destination that suffers.
        dest: MacAddr,
        /// The interfering transmitter.
        src: MacAddr,
    },
    /// `(∗ : src → dst)`: defer all transmissions while `src → dst` is in
    /// progress (update rule 2 / defer pattern 1).
    AnyWhilePair {
        /// The protected transmission's source.
        src: MacAddr,
        /// The protected transmission's destination.
        dst: MacAddr,
    },
}

/// A node's defer table with per-entry expiry and rate annotation.
#[derive(Debug, Default)]
pub struct DeferTable {
    entries: BTreeMap<DeferEntry, EntryMeta>,
}

#[derive(Debug, Clone, Copy)]
struct EntryMeta {
    expires: Time,
    rate: Rate,
}

impl DeferTable {
    /// Empty table.
    pub fn new() -> DeferTable {
        DeferTable::default()
    }

    /// Number of live entries at time `now`.
    pub fn len_at(&self, now: Time) -> usize {
        self.entries.values().filter(|m| m.expires > now).count()
    }

    /// Insert or refresh an entry, valid until `expires`. `rate` is the
    /// bit-rate annotation of the conflict observation (§3.5).
    pub fn insert(&mut self, entry: DeferEntry, expires: Time, rate: Rate) {
        let meta = self
            .entries
            .entry(entry)
            .or_insert(EntryMeta { expires, rate });
        if expires > meta.expires {
            meta.expires = expires;
        }
        meta.rate = rate;
    }

    /// Apply **update rule 1**: we (`me`) are the source in `(me, q)` of
    /// receiver `r`'s interferer list — add `(r : q → ∗)`.
    pub fn apply_rule1(&mut self, r: MacAddr, q: MacAddr, rate: Rate, expires: Time) {
        self.insert(
            DeferEntry::DestWhileSrcAny { dest: r, src: q },
            expires,
            rate,
        );
    }

    /// Apply **update rule 2**: we are the interferer in `(q, me)` of `r`'s
    /// list — add `(∗ : q → r)`.
    pub fn apply_rule2(&mut self, r: MacAddr, q: MacAddr, rate: Rate, expires: Time) {
        self.insert(DeferEntry::AnyWhilePair { src: q, dst: r }, expires, rate);
    }

    /// Would a transmission to `dest` conflict with ongoing `p → q`?
    /// Checks defer pattern 1 `(∗ : p → q)` and pattern 2 `(dest : p → ∗)`.
    ///
    /// When `rate_filter` is `Some`, only entries annotated with that rate
    /// match (the §3.5 rate-aware mode).
    pub fn must_defer(
        &self,
        dest: MacAddr,
        p: MacAddr,
        q: MacAddr,
        now: Time,
        rate_filter: Option<Rate>,
    ) -> bool {
        let live = |e: &DeferEntry| {
            self.entries
                .get(e)
                .is_some_and(|m| m.expires > now && rate_filter.is_none_or(|r| m.rate == r))
        };
        live(&DeferEntry::AnyWhilePair { src: p, dst: q })
            || live(&DeferEntry::DestWhileSrcAny { dest, src: p })
    }

    /// Drop expired entries (called opportunistically). Returns how many
    /// were evicted, for the `cmap.expired_evicted` accounting.
    pub fn prune(&mut self, now: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, m| m.expires > now);
        before - self.entries.len()
    }

    /// Iterate live entries (for introspection and tests).
    pub fn entries_at(&self, now: Time) -> impl Iterator<Item = DeferEntry> + '_ {
        self.entries
            .iter()
            .filter(move |(_, m)| m.expires > now)
            .map(|(e, _)| *e)
    }

    /// Append the full table (entries with expiry and rate annotation) to a
    /// `cmap-ckpt/v2` checkpoint.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.entries.len());
        for (e, m) in &self.entries {
            match e {
                DeferEntry::DestWhileSrcAny { dest, src } => {
                    w.u8(0);
                    put_addr(w, *dest);
                    put_addr(w, *src);
                }
                DeferEntry::AnyWhilePair { src, dst } => {
                    w.u8(1);
                    put_addr(w, *src);
                    put_addr(w, *dst);
                }
            }
            w.u64(m.expires);
            put_rate(w, m.rate);
        }
    }

    /// Rebuild a table from [`DeferTable::ckpt_save`] bytes.
    pub fn ckpt_load(r: &mut CkptReader<'_>) -> Result<DeferTable, CkptError> {
        let mut table = DeferTable::new();
        for _ in 0..r.len()? {
            let entry = match r.u8()? {
                0 => DeferEntry::DestWhileSrcAny {
                    dest: get_addr(r)?,
                    src: get_addr(r)?,
                },
                1 => DeferEntry::AnyWhilePair {
                    src: get_addr(r)?,
                    dst: get_addr(r)?,
                },
                other => {
                    return Err(CkptError::Malformed(format!("defer entry tag {other}")));
                }
            };
            let expires = r.u64()?;
            let rate = get_rate(r)?;
            if table
                .entries
                .insert(entry, EntryMeta { expires, rate })
                .is_some()
            {
                return Err(CkptError::Malformed(format!(
                    "duplicate defer entry {entry:?}"
                )));
            }
        }
        Ok(table)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn a(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    /// The worked example of §3.1 / Fig 4: receiver v's interferer list
    /// contains (u, x). u applies rule 1, x applies rule 2.
    #[test]
    fn figure4_worked_example() {
        let (u, v, x, y, z) = (a(1), a(2), a(3), a(4), a(5));
        let rate = Rate::R6;

        // At node u: rule 1 gives (v : x -> *).
        let mut du = DeferTable::new();
        du.apply_rule1(v, x, rate, 100);
        // u must defer sending to v while x -> y is ongoing...
        assert!(du.must_defer(v, x, y, 0, None));
        // ...and while x sends to anyone else.
        assert!(du.must_defer(v, x, z, 0, None));
        // But u may send to z while x transmits (rule 2 does not apply at u).
        assert!(!du.must_defer(z, x, y, 0, None));
        // And u need not defer to unrelated transmissions.
        assert!(!du.must_defer(v, y, z, 0, None));

        // At node x: rule 2 gives (* : u -> v).
        let mut dx = DeferTable::new();
        dx.apply_rule2(v, u, rate, 100);
        // x must defer to u -> v no matter whom x wants to reach...
        assert!(dx.must_defer(y, u, v, 0, None));
        assert!(dx.must_defer(z, u, v, 0, None));
        // ...but not while u transmits to some other node z.
        assert!(!dx.must_defer(y, u, z, 0, None));
    }

    #[test]
    fn entries_expire_and_prune() {
        let mut d = DeferTable::new();
        d.apply_rule1(a(1), a(2), Rate::R6, 50);
        assert!(d.must_defer(a(1), a(2), a(9), 49, None));
        assert!(!d.must_defer(a(1), a(2), a(9), 50, None));
        assert_eq!(d.len_at(49), 1);
        assert_eq!(d.len_at(50), 0);
        assert_eq!(d.prune(60), 1);
        assert_eq!(d.prune(60), 0, "second prune finds nothing");
        assert_eq!(d.entries_at(0).count(), 0);
    }

    #[test]
    fn refresh_extends_expiry() {
        let mut d = DeferTable::new();
        d.apply_rule1(a(1), a(2), Rate::R6, 50);
        d.apply_rule1(a(1), a(2), Rate::R6, 200);
        assert!(d.must_defer(a(1), a(2), a(9), 100, None));
        // Re-inserting with an *earlier* expiry must not shorten life.
        d.apply_rule1(a(1), a(2), Rate::R6, 10);
        assert!(d.must_defer(a(1), a(2), a(9), 100, None));
    }

    #[test]
    fn rate_aware_matching() {
        let mut d = DeferTable::new();
        d.apply_rule2(a(1), a(2), Rate::R6, 100);
        // Rate-agnostic lookup matches.
        assert!(d.must_defer(a(9), a(2), a(1), 0, None));
        // Rate-aware: only the annotated rate matches.
        assert!(d.must_defer(a(9), a(2), a(1), 0, Some(Rate::R6)));
        assert!(!d.must_defer(a(9), a(2), a(1), 0, Some(Rate::R18)));
    }

    #[test]
    fn empty_table_never_defers() {
        let d = DeferTable::new();
        assert!(!d.must_defer(a(1), a(2), a(3), 0, None));
        assert_eq!(d.len_at(0), 0);
    }
}
