//! Bit-rate adaptation over the conflict map (§3.5).
//!
//! The paper's experiments fix a network-wide rate, but §3.5 sketches the
//! extension: *"online bit-rate adaptation algorithms can benefit from
//! using the information in the conflict map in choosing the best rate at
//! which to transmit."* This module provides that hook:
//!
//! * [`RateController`] — the per-sender policy interface: pick a rate for
//!   the next virtual packet to a destination, learn from the per-rate
//!   delivery feedback the windowed ACKs provide.
//! * [`FixedRate`] — the paper's evaluation setting (§5.1/§5.8).
//! * [`ThroughputRate`] — a sample-rate-style adapter: tracks an EWMA
//!   delivery ratio per (destination, rate), picks the rate maximising
//!   `bit-rate × delivery`, and spends a small fraction of virtual packets
//!   probing the neighbouring rates so estimates stay fresh.
//!
//! Combined with `CmapConfig::rate_aware`, defer-table entries are
//! annotated and matched by rate, realising the §3.5 design: a sender may
//! find that 18 Mbit/s conflicts with an ongoing transmission while
//! 6 Mbit/s coexists, and the controller then faces exactly the trade the
//! paper describes — transmit slower now, or defer and transmit faster
//! later.

use std::collections::BTreeMap;

use cmap_phy::Rate;
use cmap_sim::time::Time;
use cmap_wire::MacAddr;
use rand::rngs::SmallRng;
use rand::Rng;

/// Per-destination bit-rate policy for a CMAP sender.
pub trait RateController: Send {
    /// Rate for the next virtual packet to `dst`.
    fn choose(&mut self, dst: MacAddr, now: Time, rng: &mut SmallRng) -> Rate;

    /// Feedback after acknowledgement bookkeeping: of `total` data packets
    /// sent to `dst` at `rate`, `acked` were eventually acknowledged and
    /// `lost` were given up on (repacked for retransmission).
    fn feedback(&mut self, dst: MacAddr, rate: Rate, acked: usize, lost: usize, now: Time);

    /// Append dynamic adaptation state to a `cmap-ckpt/v2` checkpoint blob.
    /// The default writes nothing, which is correct for stateless policies
    /// such as [`FixedRate`].
    fn save_state(&self, _out: &mut Vec<u8>) {}

    /// Restore [`RateController::save_state`] bytes into a freshly-created
    /// instance of the same policy. The default accepts only an empty blob.
    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        if bytes.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "{} bytes of rate-controller state for a stateless policy",
                bytes.len()
            ))
        }
    }
}

/// Always the configured rate (the paper's evaluation setting).
#[derive(Debug, Clone, Copy)]
pub struct FixedRate(pub Rate);

impl RateController for FixedRate {
    fn choose(&mut self, _dst: MacAddr, _now: Time, _rng: &mut SmallRng) -> Rate {
        self.0
    }

    fn feedback(&mut self, _dst: MacAddr, _rate: Rate, _acked: usize, _lost: usize, _now: Time) {}
}

/// EWMA delivery estimate for one (destination, rate) cell.
#[derive(Debug, Clone, Copy)]
struct Cell {
    delivery: f64,
    samples: u64,
}

impl Default for Cell {
    fn default() -> Cell {
        // Optimistic prior so untried rates get sampled.
        Cell {
            delivery: 1.0,
            samples: 0,
        }
    }
}

/// Throughput-maximising adapter with neighbour probing.
#[derive(Debug)]
pub struct ThroughputRate {
    cells: BTreeMap<(MacAddr, Rate), Cell>,
    /// EWMA weight of new observations.
    alpha: f64,
    /// Fraction of choices spent probing a neighbouring rate.
    probe_prob: f64,
    /// Rates the adapter may use (ordered subset of [`Rate::ALL`]).
    ladder: Vec<Rate>,
}

impl ThroughputRate {
    /// Adapter over the given rate ladder (e.g. the 6/12/18 Mbit/s set of
    /// §5.8, or all eight 802.11a rates).
    pub fn new(ladder: Vec<Rate>) -> ThroughputRate {
        assert!(!ladder.is_empty());
        ThroughputRate {
            cells: BTreeMap::new(),
            alpha: 0.25,
            probe_prob: 0.1,
            ladder,
        }
    }

    /// All eight 802.11a rates.
    pub fn full_ladder() -> ThroughputRate {
        ThroughputRate::new(Rate::ALL.to_vec())
    }

    /// Current delivery estimate for a cell (1.0 optimistic prior).
    pub fn delivery_estimate(&self, dst: MacAddr, rate: Rate) -> f64 {
        self.cells.get(&(dst, rate)).map_or(1.0, |c| c.delivery)
    }

    /// Effective-throughput score. The delivery term enters *squared*: a
    /// lost packet costs its airtime again on retransmission and, worse,
    /// risks a `τ`-scale window stall (§3.3), so raw `rate × delivery`
    /// badly overvalues lossy rungs. The quadratic penalty approximates
    /// that cost and makes the adapter prefer a clean slower rate over a
    /// leaky faster one — the same shape SampleRate's expected-transmission-
    /// time metric produces.
    fn score(&self, dst: MacAddr, rate: Rate) -> f64 {
        let d = self.delivery_estimate(dst, rate);
        rate.bits_per_sec() as f64 * d * d
    }

    fn best(&self, dst: MacAddr) -> Rate {
        *self
            .ladder
            .iter()
            .max_by(|&&a, &&b| self.score(dst, a).total_cmp(&self.score(dst, b)))
            .expect("non-empty ladder")
    }
}

impl RateController for ThroughputRate {
    fn choose(&mut self, dst: MacAddr, _now: Time, rng: &mut SmallRng) -> Rate {
        let best = self.best(dst);
        if rng.gen_bool(self.probe_prob) {
            // Probe an adjacent ladder rung so the estimates don't go
            // stale — but not rungs that have *converged to dead* (several
            // samples, throughput far below the incumbent): every probe of
            // a dead rate costs a whole lost virtual packet, and the
            // resulting receiver-reported loss would also trip the §3.4
            // backoff.
            let idx = self.ladder.iter().position(|&r| r == best).expect("best");
            let best_score = self.score(dst, best);
            let candidates: Vec<Rate> = [idx.checked_sub(1), Some(idx + 1)]
                .into_iter()
                .flatten()
                .filter_map(|i| self.ladder.get(i).copied())
                .filter(|&r| {
                    let cell = self.cells.get(&(dst, r));
                    match cell {
                        None => true, // unknown: worth a look
                        Some(c) => c.samples < 3 || self.score(dst, r) > 0.5 * best_score,
                    }
                })
                .collect();
            if !candidates.is_empty() {
                return candidates[rng.gen_range(0..candidates.len())];
            }
        }
        best
    }

    fn feedback(&mut self, dst: MacAddr, rate: Rate, acked: usize, lost: usize, _now: Time) {
        let total = acked + lost;
        if total == 0 {
            return;
        }
        let observed = acked as f64 / total as f64;
        let cell = self.cells.entry((dst, rate)).or_default();
        if cell.samples == 0 {
            cell.delivery = observed;
        } else {
            cell.delivery = (1.0 - self.alpha) * cell.delivery + self.alpha * observed;
        }
        cell.samples += 1;
    }

    fn save_state(&self, out: &mut Vec<u8>) {
        use crate::ckpt_util::{put_addr, put_rate};
        let mut w = cmap_sim::ckpt::CkptWriter::new();
        w.len(self.cells.len());
        for (&(dst, rate), cell) in &self.cells {
            put_addr(&mut w, dst);
            put_rate(&mut w, rate);
            w.f64(cell.delivery);
            w.u64(cell.samples);
        }
        out.extend_from_slice(&w.finish());
    }

    fn load_state(&mut self, bytes: &[u8]) -> Result<(), String> {
        use crate::ckpt_util::{get_addr, get_rate};
        let load = |bytes: &[u8]| -> Result<BTreeMap<(MacAddr, Rate), Cell>, cmap_sim::CkptError> {
            let mut r = cmap_sim::ckpt::CkptReader::new(bytes)?;
            let mut cells = BTreeMap::new();
            for _ in 0..r.len()? {
                let dst = get_addr(&mut r)?;
                let rate = get_rate(&mut r)?;
                let delivery = r.f64()?;
                let samples = r.u64()?;
                if cells
                    .insert((dst, rate), Cell { delivery, samples })
                    .is_some()
                {
                    return Err(cmap_sim::CkptError::Malformed(format!(
                        "duplicate rate cell {dst}"
                    )));
                }
            }
            r.expect_end()?;
            Ok(cells)
        };
        self.cells = load(bytes).map_err(|e| e.to_string())?;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use cmap_sim::rng::stream_rng;

    fn dst() -> MacAddr {
        MacAddr::from_node_index(9)
    }

    #[test]
    fn fixed_rate_is_fixed() {
        let mut rc = FixedRate(Rate::R18);
        let mut rng = stream_rng(1, 0);
        for _ in 0..10 {
            assert_eq!(rc.choose(dst(), 0, &mut rng), Rate::R18);
        }
    }

    #[test]
    fn adapter_climbs_to_the_best_clean_rate() {
        let mut rc = ThroughputRate::new(vec![Rate::R6, Rate::R12, Rate::R18]);
        let mut rng = stream_rng(2, 0);
        // Perfect delivery everywhere: it must settle on 18 Mbit/s.
        for _ in 0..50 {
            let r = rc.choose(dst(), 0, &mut rng);
            rc.feedback(dst(), r, 32, 0, 0);
        }
        assert_eq!(rc.best(dst()), Rate::R18);
    }

    #[test]
    fn adapter_backs_off_from_a_lossy_rate() {
        let mut rc = ThroughputRate::new(vec![Rate::R6, Rate::R12, Rate::R18]);
        let mut rng = stream_rng(3, 0);
        for _ in 0..120 {
            let r = rc.choose(dst(), 0, &mut rng);
            // 18 Mbit/s loses 90% of packets; 12 Mbit/s loses 20%; 6 clean.
            let (acked, lost) = match r {
                Rate::R18 => (3, 29),
                Rate::R12 => (26, 6),
                _ => (32, 0),
            };
            rc.feedback(dst(), r, acked, lost, 0);
        }
        // Throughput: 18*0.1 = 1.8 < 12*0.8 = 9.6 > 6*1.0 = 6.
        assert_eq!(rc.best(dst()), Rate::R12);
        assert!(rc.delivery_estimate(dst(), Rate::R18) < 0.3);
    }

    #[test]
    fn estimates_are_per_destination() {
        let mut rc = ThroughputRate::new(vec![Rate::R6, Rate::R54]);
        let other = MacAddr::from_node_index(7);
        for _ in 0..30 {
            rc.feedback(dst(), Rate::R54, 0, 32, 0); // dead to dst
            rc.feedback(other, Rate::R54, 32, 0, 0); // clean to other
        }
        assert_eq!(rc.best(dst()), Rate::R6);
        assert_eq!(rc.best(other), Rate::R54);
    }

    #[test]
    fn probing_visits_neighbours() {
        let mut rc = ThroughputRate::new(vec![Rate::R6, Rate::R12, Rate::R18]);
        let mut rng = stream_rng(4, 0);
        for _ in 0..40 {
            let r = rc.choose(dst(), 0, &mut rng);
            rc.feedback(dst(), r, 32, 0, 0);
        }
        // Best is 18; over many draws some probes at 12 must occur.
        let mut probed = false;
        for _ in 0..200 {
            if rc.choose(dst(), 0, &mut rng) == Rate::R12 {
                probed = true;
                break;
            }
        }
        assert!(probed, "never probed the lower neighbour");
    }
}
