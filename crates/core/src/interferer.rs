//! Receiver-side interference inference: building the interferer list (§3.1).
//!
//! A receiver `v` maintains, for every neighbour it overhears, the time
//! windows that neighbour was transmitting (from headers, trailers and data
//! packets — headers announce the future, trailers describe the past). When
//! a data packet from a sender `u` is expected, `v` checks which neighbours
//! were active during that packet's airtime and updates per
//! `(source, interferer)` loss counters. A pair `(u, x)` enters the
//! interferer list `I_v` once enough overlapped packets have been observed
//! and the loss rate among them exceeds `l_interf` — using a threshold and
//! not a single loss because concurrent transmission still wins whenever
//! the loss rate stays below 0.5 (§3.1).

// BTreeMap, not HashMap: `active_during`/`concurrent_sources` feed MAC
// decisions and the promotions log, so their order must not vary with hash
// seeds across runs.
use std::collections::{BTreeMap, VecDeque};

use cmap_phy::Rate;
use cmap_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use cmap_sim::time::Time;
use cmap_wire::MacAddr;

use crate::ckpt_util::{get_addr, get_rate, put_addr, put_rate};

/// Per-(source, interferer) overlap/loss counters.
#[derive(Debug, Default, Clone, Copy)]
struct Counters {
    overlapped: u64,
    lost: u64,
}

/// Receiver-side interference tracker (one per node, covering all senders
/// that address it).
#[derive(Debug, Default)]
pub struct InterfererTracker {
    /// Recent activity windows per overheard neighbour, newest at the back.
    activity: BTreeMap<MacAddr, VecDeque<(Time, Time)>>,
    counters: BTreeMap<(MacAddr, MacAddr), Counters>,
    /// Qualified interferer-list entries: `(source, interferer)` → (expiry,
    /// source bit-rate when observed).
    entries: BTreeMap<(MacAddr, MacAddr), (Time, Rate)>,
    /// Diagnostic log of promotions: (time, source, interferer, overlapped,
    /// lost) at the moment the pair qualified. Capped at
    /// [`MAX_PROMOTIONS`] (oldest dropped) so soak runs stay bounded.
    pub promotions: Vec<(Time, MacAddr, MacAddr, u64, u64)>,
}

/// Cap on remembered activity windows per neighbour.
const MAX_WINDOWS: usize = 64;

/// Cap on the promotions diagnostic log.
const MAX_PROMOTIONS: usize = 256;

impl InterfererTracker {
    /// Empty tracker.
    pub fn new() -> InterfererTracker {
        InterfererTracker::default()
    }

    /// Record that `node` was (or will be) transmitting during
    /// `[start, end)`.
    pub fn note_activity(&mut self, node: MacAddr, start: Time, end: Time) {
        let q = self.activity.entry(node).or_default();
        // Merge with the last window when overlapping/adjacent (common for
        // back-to-back data packets).
        if let Some(last) = q.back_mut() {
            if start <= last.1 {
                last.1 = last.1.max(end);
                last.0 = last.0.min(start);
                return;
            }
        }
        q.push_back((start, end));
        if q.len() > MAX_WINDOWS {
            q.pop_front();
        }
    }

    /// Neighbours whose recorded activity overlaps `[start, end)`, except
    /// `exclude` (the packet's own sender).
    pub fn active_during(
        &self,
        start: Time,
        end: Time,
        exclude: MacAddr,
    ) -> impl Iterator<Item = MacAddr> + '_ {
        self.activity
            .iter()
            .filter(move |&(&node, windows)| {
                node != exclude && windows.iter().any(|&(s, e)| s < end && start < e)
            })
            .map(|(&node, _)| node)
    }

    /// Fraction of `[start, end)` covered by `node`'s known activity.
    pub fn overlap_fraction(&self, node: MacAddr, start: Time, end: Time) -> f64 {
        if end <= start {
            return 0.0;
        }
        let Some(windows) = self.activity.get(&node) else {
            return 0.0;
        };
        let covered: u64 = windows
            .iter()
            .map(|&(s, e)| e.min(end).saturating_sub(s.max(start)))
            .sum();
        covered as f64 / (end - start) as f64
    }

    /// Neighbours whose known activity covers at least `min_frac` of
    /// `[start, end)`, excluding `exclude`.
    ///
    /// Judging concurrency over the *whole* virtual-packet span (rather
    /// than packet by packet) matters: a receiver's knowledge of an
    /// interferer's activity is biased toward the moments it could decode
    /// that interferer — typically virtual-packet boundaries, which is also
    /// where ACK exchanges collide. Per-packet attribution over those few
    /// biased samples routinely fabricates >50% loss rates for pairs whose
    /// true concurrent loss is a few percent.
    pub fn concurrent_sources(
        &self,
        start: Time,
        end: Time,
        min_frac: f64,
        exclude: MacAddr,
    ) -> Vec<MacAddr> {
        self.activity
            .keys()
            .copied()
            .filter(|&node| node != exclude && self.overlap_fraction(node, start, end) >= min_frac)
            .collect()
    }

    /// Account one expected data packet from `u` against an already-judged
    /// concurrent transmitter `x`.
    #[allow(clippy::too_many_arguments)]
    pub fn record_pair(
        &mut self,
        u: MacAddr,
        x: MacAddr,
        lost: bool,
        rate: Rate,
        now: Time,
        l_interf: f64,
        min_samples: u64,
        entry_lifetime: Time,
    ) {
        let c = self.counters.entry((u, x)).or_default();
        c.overlapped += 1;
        if lost {
            c.lost += 1;
        }
        if c.overlapped >= min_samples && c.lost as f64 > l_interf * c.overlapped as f64 {
            if !self.entries.contains_key(&(u, x)) {
                if self.promotions.len() >= MAX_PROMOTIONS {
                    self.promotions.remove(0);
                }
                self.promotions.push((now, u, x, c.overlapped, c.lost));
            }
            self.entries.insert((u, x), (now + entry_lifetime, rate));
        }
    }

    /// Account one expected data packet from `u` occupying `[start, end)`
    /// against every neighbour with any overlapping known activity
    /// (per-packet attribution; the MAC uses whole-virtual-packet judgement
    /// via [`InterfererTracker::concurrent_sources`] instead — see its
    /// docs for why).
    #[allow(clippy::too_many_arguments)]
    pub fn record_packet(
        &mut self,
        u: MacAddr,
        start: Time,
        end: Time,
        lost: bool,
        rate: Rate,
        now: Time,
        l_interf: f64,
        min_samples: u64,
        entry_lifetime: Time,
    ) {
        let interferers: Vec<MacAddr> = self.active_during(start, end, u).collect();
        for x in interferers {
            self.record_pair(u, x, lost, rate, now, l_interf, min_samples, entry_lifetime);
        }
    }

    /// Halve all counters — called periodically so stale history fades and
    /// the list adapts to "changing channel conditions and interference
    /// patterns" (§3.1).
    pub fn decay(&mut self) {
        self.counters.retain(|_, c| {
            c.overlapped /= 2;
            c.lost /= 2;
            c.overlapped > 0
        });
    }

    /// Drop expired entries and ancient activity windows. Returns how many
    /// interferer-list entries were evicted (activity windows are cheap and
    /// not counted).
    pub fn prune(&mut self, now: Time, activity_horizon: Time) -> usize {
        let before = self.entries.len();
        self.entries.retain(|_, &mut (exp, _)| exp > now);
        let cutoff = now.saturating_sub(activity_horizon);
        self.activity.retain(|_, q| {
            while q.front().is_some_and(|&(_, e)| e < cutoff) {
                q.pop_front();
            }
            !q.is_empty()
        });
        before - self.entries.len()
    }

    /// Live `(source, interferer, rate)` entries at `now` — the interferer
    /// list to broadcast.
    pub fn entries_at(&self, now: Time) -> Vec<(MacAddr, MacAddr, Rate)> {
        let mut v = Vec::new();
        self.for_each_entry_at(now, |u, x, rate| {
            v.push((u, x, rate));
            true
        });
        v
    }

    /// Allocation-free walk of the qualified entries at `now`, in the same
    /// deterministic `(source, interferer)` order as
    /// [`InterfererTracker::entries_at`] (the entry map is ordered by that
    /// key). `f` returns `false` to stop early (e.g. at frame capacity).
    pub fn for_each_entry_at(&self, now: Time, mut f: impl FnMut(MacAddr, MacAddr, Rate) -> bool) {
        for (&(u, x), &(exp, rate)) in &self.entries {
            if exp > now && !f(u, x, rate) {
                break;
            }
        }
    }

    /// Loss statistics for a pair, for tests and diagnostics:
    /// `(overlapped, lost)`.
    pub fn pair_counters(&self, u: MacAddr, x: MacAddr) -> (u64, u64) {
        self.counters
            .get(&(u, x))
            .map_or((0, 0), |c| (c.overlapped, c.lost))
    }

    /// Append the full tracker state (activity windows, pair counters,
    /// qualified entries, promotions log) to a `cmap-ckpt/v2` checkpoint.
    pub fn ckpt_save(&self, w: &mut CkptWriter) {
        w.len(self.activity.len());
        for (&node, windows) in &self.activity {
            put_addr(w, node);
            w.len(windows.len());
            for &(s, e) in windows {
                w.u64(s);
                w.u64(e);
            }
        }
        w.len(self.counters.len());
        for (&(u, x), c) in &self.counters {
            put_addr(w, u);
            put_addr(w, x);
            w.u64(c.overlapped);
            w.u64(c.lost);
        }
        w.len(self.entries.len());
        for (&(u, x), &(exp, rate)) in &self.entries {
            put_addr(w, u);
            put_addr(w, x);
            w.u64(exp);
            put_rate(w, rate);
        }
        w.len(self.promotions.len());
        for &(t, u, x, overlapped, lost) in &self.promotions {
            w.u64(t);
            put_addr(w, u);
            put_addr(w, x);
            w.u64(overlapped);
            w.u64(lost);
        }
    }

    /// Rebuild a tracker from [`InterfererTracker::ckpt_save`] bytes.
    pub fn ckpt_load(r: &mut CkptReader<'_>) -> Result<InterfererTracker, CkptError> {
        let mut t = InterfererTracker::new();
        for _ in 0..r.len()? {
            let node = get_addr(r)?;
            let mut windows = VecDeque::new();
            for _ in 0..r.len()? {
                let s = r.u64()?;
                let e = r.u64()?;
                windows.push_back((s, e));
            }
            if t.activity.insert(node, windows).is_some() {
                return Err(CkptError::Malformed(format!("duplicate activity {node}")));
            }
        }
        for _ in 0..r.len()? {
            let u = get_addr(r)?;
            let x = get_addr(r)?;
            let overlapped = r.u64()?;
            let lost = r.u64()?;
            if t.counters
                .insert((u, x), Counters { overlapped, lost })
                .is_some()
            {
                return Err(CkptError::Malformed(format!("duplicate counters {u}/{x}")));
            }
        }
        for _ in 0..r.len()? {
            let u = get_addr(r)?;
            let x = get_addr(r)?;
            let exp = r.u64()?;
            let rate = get_rate(r)?;
            if t.entries.insert((u, x), (exp, rate)).is_some() {
                return Err(CkptError::Malformed(format!("duplicate entry {u}/{x}")));
            }
        }
        for _ in 0..r.len()? {
            let time = r.u64()?;
            let u = get_addr(r)?;
            let x = get_addr(r)?;
            let overlapped = r.u64()?;
            let lost = r.u64()?;
            t.promotions.push((time, u, x, overlapped, lost));
        }
        Ok(t)
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    fn a(i: u16) -> MacAddr {
        MacAddr::from_node_index(i)
    }

    fn record_burst(
        t: &mut InterfererTracker,
        u: MacAddr,
        times: impl Iterator<Item = (Time, Time, bool)>,
    ) {
        for (s, e, lost) in times {
            t.record_packet(u, s, e, lost, Rate::R6, e, 0.5, 8, 1_000_000);
        }
    }

    #[test]
    fn qualifying_interferer_is_promoted() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 0, 100_000);
        // 10 overlapped packets from u, 8 lost: loss rate 0.8 > 0.5.
        record_burst(
            &mut t,
            u,
            (0..10).map(|i| (i * 1000, i * 1000 + 900, i < 8)),
        );
        let entries = t.entries_at(100);
        assert_eq!(entries, vec![(u, x, Rate::R6)]);
        assert_eq!(t.pair_counters(u, x), (10, 8));
    }

    #[test]
    fn mild_interference_not_promoted() {
        // Loss rate 0.3 < l_interf: concurrent transmission still wins, so
        // the pair must NOT be listed (the core of §3.1's threshold logic).
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 0, 100_000);
        record_burst(
            &mut t,
            u,
            (0..10).map(|i| (i * 1000, i * 1000 + 900, i < 3)),
        );
        assert!(t.entries_at(100).is_empty());
    }

    #[test]
    fn too_few_samples_not_promoted() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 0, 100_000);
        record_burst(&mut t, u, (0..5).map(|i| (i * 1000, i * 1000 + 900, true)));
        assert!(t.entries_at(100).is_empty(), "5 samples < min 8");
    }

    #[test]
    fn losses_outside_activity_not_attributed() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 1_000_000, 2_000_000);
        // Losses entirely before x's activity window.
        record_burst(&mut t, u, (0..20).map(|i| (i * 1000, i * 1000 + 900, true)));
        assert!(t.entries_at(100).is_empty());
        assert_eq!(t.pair_counters(u, x), (0, 0));
    }

    #[test]
    fn entries_expire() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 0, 1_000_000);
        for i in 0..10u64 {
            t.record_packet(
                u,
                i * 1000,
                i * 1000 + 900,
                true,
                Rate::R6,
                10_000,
                0.5,
                8,
                5_000,
            );
        }
        assert_eq!(t.entries_at(14_000).len(), 1);
        assert!(t.entries_at(15_000).is_empty());
        assert_eq!(t.prune(15_000, 1_000), 1);
        assert!(t.entries_at(0).is_empty());
    }

    #[test]
    fn decay_halves_and_cleans() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        t.note_activity(x, 0, 100_000);
        record_burst(&mut t, u, (0..9).map(|i| (i * 1000, i * 1000 + 900, true)));
        assert_eq!(t.pair_counters(u, x), (9, 9));
        t.decay();
        assert_eq!(t.pair_counters(u, x), (4, 4));
        t.decay();
        t.decay();
        t.decay();
        assert_eq!(t.pair_counters(u, x), (0, 0));
    }

    #[test]
    fn adjacent_windows_merge() {
        let mut t = InterfererTracker::new();
        let x = a(3);
        t.note_activity(x, 0, 100);
        t.note_activity(x, 100, 200);
        t.note_activity(x, 150, 400);
        assert_eq!(t.activity[&x].len(), 1);
        assert_eq!(t.activity[&x][0], (0, 400));
        // Disjoint window stays separate.
        t.note_activity(x, 1000, 1100);
        assert_eq!(t.activity[&x].len(), 2);
    }

    #[test]
    fn overlap_fraction_math() {
        let mut t = InterfererTracker::new();
        let x = a(3);
        t.note_activity(x, 100, 200);
        t.note_activity(x, 300, 400);
        // Fully covered span.
        assert!((t.overlap_fraction(x, 120, 180) - 1.0).abs() < 1e-12);
        // Half covered: [150, 250) overlaps [150, 200).
        assert!((t.overlap_fraction(x, 150, 250) - 0.5).abs() < 1e-12);
        // Span covering both windows: 200 of 400.
        assert!((t.overlap_fraction(x, 50, 450) - 0.5).abs() < 1e-12);
        // Unknown node, empty span.
        assert_eq!(t.overlap_fraction(a(9), 0, 100), 0.0);
        assert_eq!(t.overlap_fraction(x, 100, 100), 0.0);
    }

    #[test]
    fn concurrent_sources_filters_by_fraction() {
        let mut t = InterfererTracker::new();
        t.note_activity(a(3), 0, 1000); // covers everything
        t.note_activity(a(4), 0, 100); // 10% of [0,1000)
        let both: Vec<_> = t.concurrent_sources(0, 1000, 0.05, a(1));
        assert_eq!(both.len(), 2);
        let strong: Vec<_> = t.concurrent_sources(0, 1000, 0.5, a(1));
        assert_eq!(strong, vec![a(3)]);
        // The packet's own sender is excluded.
        assert!(t.concurrent_sources(0, 1000, 0.5, a(3)).is_empty());
    }

    #[test]
    fn promotions_log_records_first_qualification() {
        let (u, x) = (a(1), a(3));
        let mut t = InterfererTracker::new();
        for i in 0..20u64 {
            t.record_pair(u, x, true, Rate::R6, i, 0.5, 12, 1_000);
        }
        assert_eq!(t.promotions.len(), 1);
        let (when, pu, px, ov, lost) = t.promotions[0];
        assert_eq!((pu, px), (u, x));
        assert_eq!(when, 11); // 12th sample
        assert_eq!((ov, lost), (12, 12));
    }

    #[test]
    fn promotions_log_is_bounded() {
        let mut t = InterfererTracker::new();
        // Promote far more pairs than the cap by letting each expire and
        // re-qualify with a distinct interferer address.
        for i in 0..(MAX_PROMOTIONS as u16 + 50) {
            for s in 0..12u64 {
                t.record_pair(a(1), a(100 + i), true, Rate::R6, s, 0.5, 12, 1);
            }
            t.prune(1_000, 1_000);
        }
        assert_eq!(t.promotions.len(), MAX_PROMOTIONS);
        // The survivors are the newest promotions.
        let (_, _, x, _, _) = *t.promotions.last().unwrap();
        assert_eq!(x, a(100 + MAX_PROMOTIONS as u16 + 49));
    }

    #[test]
    fn activity_horizon_pruning() {
        let mut t = InterfererTracker::new();
        t.note_activity(a(3), 0, 100);
        t.note_activity(a(3), 10_000, 10_100);
        t.prune(15_000, 5_000);
        assert_eq!(t.activity[&a(3)].len(), 1);
        t.prune(30_000, 5_000);
        assert!(t.activity.is_empty());
    }
}
