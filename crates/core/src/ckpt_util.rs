//! Shared field codecs for the per-module `cmap-ckpt/v2` state
//! serializers: link-layer addresses and bit-rates as fixed-width fields.

use cmap_phy::Rate;
use cmap_sim::ckpt::{CkptError, CkptReader, CkptWriter};
use cmap_wire::MacAddr;

pub(crate) fn put_addr(w: &mut CkptWriter, a: MacAddr) {
    for b in a.0 {
        w.u8(b);
    }
}

pub(crate) fn get_addr(r: &mut CkptReader<'_>) -> Result<MacAddr, CkptError> {
    let mut b = [0u8; MacAddr::LEN];
    for byte in &mut b {
        *byte = r.u8()?;
    }
    Ok(MacAddr(b))
}

pub(crate) fn put_rate(w: &mut CkptWriter, rate: Rate) {
    w.u8(rate.to_u8());
}

pub(crate) fn get_rate(r: &mut CkptReader<'_>) -> Result<Rate, CkptError> {
    let v = r.u8()?;
    Rate::from_u8(v).ok_or_else(|| CkptError::Malformed(format!("rate tag {v}")))
}
