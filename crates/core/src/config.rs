//! CMAP protocol constants (§3, §4.2).

use cmap_phy::Rate;
use cmap_sim::time::{bits_duration, millis, Time};

/// Configuration of one [`CmapMac`](crate::CmapMac). Defaults are the
/// paper's implementation values (§4.2).
#[derive(Debug, Clone)]
pub struct CmapConfig {
    /// Data packets per virtual packet (`N_vpkt` = 32, §4.1).
    pub n_vpkt: usize,
    /// Send window in virtual packets (`N_window` = 8, §3.3).
    pub n_window: usize,
    /// Wait after a deferred-to transmission ends before re-checking
    /// (`t_deferwait` = 5 ms, §4.2).
    pub t_deferwait: Time,
    /// How long to wait for an ACK after a virtual packet (`t_ackwait` =
    /// 5 ms, §4.2).
    pub t_ackwait: Time,
    /// Mean receiver-side turnaround between trailer reception and the ACK
    /// transmission — the software-MAC latency of the prototype (§4.1
    /// measured 0.5–5 ms). Also the single-link calibration knob (§4.2):
    /// ~4 ms brings CMAP's one-link throughput level with 802.11's. The
    /// actual delay is drawn uniformly within ±`sw_jitter` of this.
    pub ack_turnaround: Time,
    /// Software-MAC timing jitter: each ACK turnaround and each
    /// virtual-packet start is dithered by a uniform draw of this scale.
    /// The prototype's Click/MadWifi path had 0.5–5 ms of it (§4.1); it
    /// matters — without it two saturated senders phase-lock, and an
    /// exposed sender can sit in a regime where *every* ACK collides with
    /// the other sender's data, defeating the windowed ACK protocol.
    pub sw_jitter: Time,
    /// Loss-rate threshold above which a receiver declares interference
    /// (`l_interf` = 0.5, §3.1).
    pub l_interf: f64,
    /// Loss-rate threshold above which a sender backs off (`l_backoff` =
    /// 0.5, §3.4).
    pub l_backoff: f64,
    /// Initial nonzero contention window (`CW_start` = 5 ms: the 802.11
    /// value scaled by `N_vpkt`, §4.2).
    pub cw_start: Time,
    /// Maximum contention window (`CW_max` = 320 ms, §4.2).
    pub cw_max: Time,
    /// Minimum overlapped-packet samples before a receiver will judge a
    /// `(source, interferer)` pair.
    pub interferer_min_samples: u64,
    /// Period between interferer-list broadcasts.
    pub broadcast_period: Time,
    /// Lifetime of an interferer-list entry without re-confirmation (§3.1:
    /// "entries in the interferer list are timed out periodically to
    /// accommodate changing channel conditions and interference patterns").
    /// A few broadcast periods: long enough to keep a genuine conflict
    /// deferred, short enough that a stale entry (e.g. from a start-up
    /// burst) costs only seconds of lost concurrency before the sender
    /// probes again.
    pub interferer_timeout: Time,
    /// Lifetime of a defer-table entry without refresh by a new broadcast.
    pub defer_entry_timeout: Time,
    /// Bit-rate for data packets.
    pub data_rate: Rate,
    /// Bit-rate for headers, trailers, ACKs and interferer lists (always the
    /// base rate, §5.8).
    pub control_rate: Rate,
    /// Annotate/match defer state by bit-rate (§3.5 extension). With a
    /// single network-wide rate (the paper's experiments) this is moot.
    pub rate_aware: bool,
    /// Piggyback the interferer list on ACKs (§3.1 allows riding on control
    /// messages). ACKs arrive during the sender's `t_ackwait` — one of the
    /// few windows a saturated sender's radio is listening — so this is how
    /// defer tables converge under load.
    pub il_in_acks: bool,
    /// Transmit trailers (default). Disabling them is the ablation Fig 16
    /// motivates: receivers must then finalise a virtual packet (and send
    /// its ACK) off a timer armed by the header alone, so a lost header
    /// means a lost ACK opportunity and no backward activity window for
    /// interference attribution.
    pub send_trailers: bool,
    /// Run the §3.4 loss-rate backoff (default). Disabling it is the
    /// hidden-terminal ablation: without backoff, senders that cannot hear
    /// each other blast continuously and losses persist (§5.5's motivation).
    pub backoff_enabled: bool,
    /// Fall back to plain carrier sense when the conflict map looks stale
    /// (§4's safety argument: "when the conflict map is inaccurate, CMAP
    /// falls back to carrier sense"). Active only while *both* hold:
    /// at least [`CmapConfig::csma_fallback_after`] consecutive ACK
    /// timeouts, and no interferer-list information applied for
    /// [`CmapConfig::map_stale_after`].
    pub fallback_csma: bool,
    /// Consecutive ACK timeouts before the stale-map fallback may engage.
    pub csma_fallback_after: u32,
    /// Conflict-map staleness horizon: how long without applying any
    /// interferer-list entry (broadcast or ACK-piggybacked) before the map
    /// is considered stale for the CSMA fallback.
    pub map_stale_after: Time,
    /// Maximum number of times a data packet is repacked for
    /// retransmission before the sender gives up on it (surfaced as the
    /// `cmap.rtx_give_up` counter). Unbounded retransmission of packets to
    /// a crashed receiver would otherwise occupy the send window forever.
    pub max_rtx_rounds: u32,
    /// Upper bound on a single defer wait. The ongoing list can hold
    /// optimistic end times for transmissions whose sender died mid-burst;
    /// without a clamp a deferring node would sleep on a ghost.
    pub max_defer_wait: Time,
    /// Evict per-sender receive state (reassembly bitmaps, ACK bases) for
    /// peers not heard from in this long.
    pub peer_state_timeout: Time,
}

impl Default for CmapConfig {
    fn default() -> CmapConfig {
        CmapConfig {
            n_vpkt: 32,
            n_window: 8,
            t_deferwait: millis(5),
            t_ackwait: millis(5),
            ack_turnaround: millis(4),
            sw_jitter: millis(2),
            l_interf: 0.5,
            l_backoff: 0.5,
            cw_start: millis(5),
            cw_max: millis(320),
            interferer_min_samples: 12,
            broadcast_period: millis(1000),
            interferer_timeout: millis(4_000),
            defer_entry_timeout: millis(5_000),
            data_rate: Rate::R6,
            control_rate: Rate::BASE,
            rate_aware: false,
            il_in_acks: true,
            send_trailers: true,
            backoff_enabled: true,
            fallback_csma: true,
            csma_fallback_after: 3,
            map_stale_after: millis(5_000),
            max_rtx_rounds: 8,
            max_defer_wait: millis(100),
            peer_state_timeout: millis(30_000),
        }
    }
}

impl CmapConfig {
    /// Same configuration at a different data rate (control stays at base).
    pub fn at_rate(mut self, rate: Rate) -> CmapConfig {
        self.data_rate = rate;
        self
    }

    /// CMAP with a stop-and-wait window (`N_window` = 1) — the "CMAP,
    /// win=1" ablation of Fig 12.
    pub fn stop_and_wait(mut self) -> CmapConfig {
        self.n_window = 1;
        self
    }

    /// CMAP without trailers (ablation; see [`CmapConfig::send_trailers`]).
    pub fn without_trailers(mut self) -> CmapConfig {
        self.send_trailers = false;
        self
    }

    /// CMAP without the loss-rate backoff (ablation; see
    /// [`CmapConfig::backoff_enabled`]).
    pub fn without_backoff(mut self) -> CmapConfig {
        self.backoff_enabled = false;
        self
    }

    /// CMAP without the stale-map carrier-sense fallback (ablation; see
    /// [`CmapConfig::fallback_csma`]).
    pub fn without_csma_fallback(mut self) -> CmapConfig {
        self.fallback_csma = false;
        self
    }

    /// Maximum retransmission timeout: the airtime of a full window of data
    /// (`τ_max = N_window · N_vpkt · packet bits / link rate`, §3.3).
    pub fn tau_max(&self, payload_len: usize) -> Time {
        let bits = (self.n_window * self.n_vpkt * payload_len * 8) as u64;
        bits_duration(bits, self.data_rate.bits_per_sec())
    }

    /// Minimum retransmission timeout (`τ_min = τ_max / 2`, §3.3).
    pub fn tau_min(&self, payload_len: usize) -> Time {
        self.tau_max(payload_len) / 2
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn defaults_match_paper() {
        let c = CmapConfig::default();
        assert_eq!(c.n_vpkt, 32);
        assert_eq!(c.n_window, 8);
        assert_eq!(c.t_deferwait, millis(5));
        assert_eq!(c.t_ackwait, millis(5));
        assert_eq!(c.cw_start, millis(5));
        assert_eq!(c.cw_max, millis(320));
        assert!((c.l_interf - 0.5).abs() < 1e-12);
        assert!((c.l_backoff - 0.5).abs() < 1e-12);
    }

    #[test]
    fn tau_formula() {
        let c = CmapConfig::default();
        // 8 * 32 * 1400 * 8 bits at 6 Mbit/s ~ 478 ms.
        let tmax = c.tau_max(1400);
        assert!((tmax as i64 - 477_866_667).abs() < 10, "{tmax}");
        assert_eq!(c.tau_min(1400), tmax / 2);
    }

    #[test]
    fn degradation_knobs_default_sane() {
        let c = CmapConfig::default();
        assert!(c.fallback_csma);
        assert!(c.csma_fallback_after >= 1);
        assert!(c.map_stale_after >= c.defer_entry_timeout);
        assert!(c.max_rtx_rounds >= 2);
        assert!(c.max_defer_wait >= c.t_deferwait);
        assert!(c.peer_state_timeout > c.map_stale_after);
        assert!(!c.clone().without_csma_fallback().fallback_csma);
    }

    #[test]
    fn builders() {
        let c = CmapConfig::default().at_rate(Rate::R18).stop_and_wait();
        assert_eq!(c.data_rate, Rate::R18);
        assert_eq!(c.control_rate, Rate::R6);
        assert_eq!(c.n_window, 1);
    }
}
