//! Minimal deterministic JSON encoding.
//!
//! The artifact writers in this crate emit JSON by hand rather than through
//! a serialization framework: the build has no external dependencies, the
//! structures are small, and determinism is the contract — fixed field
//! order, `BTreeMap`-sorted keys, and a single float formatting rule.

/// Append `s` as a JSON string literal (with quotes) to `out`.
pub fn push_str_lit(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str(&format!("\\u{:04x}", c as u32));
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Render an `f64` deterministically: Rust's shortest round-trip repr for
/// finite values, `null` for NaN/infinities (JSON has no spelling for them).
pub fn fmt_f64(v: f64) -> String {
    if v.is_finite() {
        format!("{v}")
    } else {
        "null".to_string()
    }
}

/// Append a `"key":` prefix (no leading comma) to `out`.
pub fn push_key(out: &mut String, key: &str) {
    push_str_lit(out, key);
    out.push(':');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn escapes_specials() {
        let mut s = String::new();
        push_str_lit(&mut s, "a\"b\\c\nd\u{1}");
        assert_eq!(s, "\"a\\\"b\\\\c\\nd\\u0001\"");
    }

    #[test]
    fn floats_are_shortest_or_null() {
        assert_eq!(fmt_f64(1.5), "1.5");
        assert_eq!(fmt_f64(0.1), "0.1");
        assert_eq!(fmt_f64(f64::NAN), "null");
        assert_eq!(fmt_f64(f64::INFINITY), "null");
        // Integral floats keep their integral repr (stable across runs).
        assert_eq!(fmt_f64(3.0), "3");
    }
}
