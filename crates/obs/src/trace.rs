//! Structured trace layer: a bounded ring buffer of typed events.
//!
//! Protocol and engine layers emit [`TraceEvent`]s at decision points (the
//! taxonomy below mirrors DESIGN.md §8); the sink keeps the most recent
//! `capacity` records and counts what it sheds, so a soak run can trace
//! forever in constant memory. When tracing is disabled the emit sites
//! reduce to one branch on an `Option` — the disabled path allocates
//! nothing and formats nothing.
//!
//! The JSONL dump is deterministic: records carry their global sequence
//! number, fields serialize in a fixed order, and every value derives from
//! simulation state (never wall clock), so two same-seed runs dump
//! byte-identical traces.

use std::collections::VecDeque;

use crate::json;

/// One typed trace event. Node identifiers are dense world indices; `dst` /
/// `peer` are the wire-address node indices (`u16::MAX` when unmapped).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TraceEvent {
    /// A transmission started: frame kind tag, wire length and bit-rate.
    TxStart {
        /// Transmitting node.
        node: u32,
        /// Frame kind tag (e.g. `"cmap_header"`, `"dot11_data"`).
        kind: &'static str,
        /// Wire length in bytes.
        bytes: u32,
        /// Bit-rate in Mbit/s.
        rate_mbps: u32,
    },
    /// CMAP's transmission decision process chose to defer (§3.2).
    DeferDecision {
        /// Deferring sender.
        node: u32,
        /// Intended receiver (node index of the wire address).
        dst: u16,
        /// How long the sender will wait before re-checking, in ns.
        wait_ns: u64,
        /// Whether the conservative CSMA fallback was active for this
        /// decision (stale conflict map).
        fallback: bool,
    },
    /// A cumulative ACK advanced the sender's window.
    AckWindowSlide {
        /// Sender whose window moved.
        node: u32,
        /// The acknowledging receiver (node index of the wire address).
        peer: u16,
        /// Data packets newly acknowledged by this ACK.
        newly_acked: u32,
    },
    /// The sender entered the conservative fall-back-to-CSMA regime.
    FallbackToCsma {
        /// The falling-back sender.
        node: u32,
        /// Consecutive ACK timeouts that triggered the fallback.
        timeout_streak: u32,
    },
    /// The fault plan injected an action.
    FaultInjected {
        /// Action kind (e.g. `"node_down"`, `"lockup"`).
        kind: &'static str,
        /// Affected node.
        node: u32,
    },
}

impl TraceEvent {
    /// The event's kind tag as it appears in the JSONL `ev` field.
    pub const fn kind(&self) -> &'static str {
        match self {
            TraceEvent::TxStart { .. } => "tx_start",
            TraceEvent::DeferDecision { .. } => "defer_decision",
            TraceEvent::AckWindowSlide { .. } => "ack_window_slide",
            TraceEvent::FallbackToCsma { .. } => "fallback_to_csma",
            TraceEvent::FaultInjected { .. } => "fault_injected",
        }
    }
}

/// One sequenced, timestamped record in the sink.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct TraceRecord {
    /// Global emit sequence number (monotonic across evictions).
    pub seq: u64,
    /// Simulation time of the emit, in ns.
    pub at_ns: u64,
    /// The event.
    pub ev: TraceEvent,
}

impl TraceRecord {
    /// One JSONL line: fixed field order, no trailing newline.
    pub fn to_json(&self) -> String {
        let mut s = String::with_capacity(96);
        s.push_str("{\"seq\":");
        s.push_str(&self.seq.to_string());
        s.push_str(",\"at_ns\":");
        s.push_str(&self.at_ns.to_string());
        s.push_str(",\"ev\":");
        json::push_str_lit(&mut s, self.ev.kind());
        match self.ev {
            TraceEvent::TxStart {
                node,
                kind,
                bytes,
                rate_mbps,
            } => {
                s.push_str(&format!(",\"node\":{node},\"kind\":"));
                json::push_str_lit(&mut s, kind);
                s.push_str(&format!(",\"bytes\":{bytes},\"rate_mbps\":{rate_mbps}"));
            }
            TraceEvent::DeferDecision {
                node,
                dst,
                wait_ns,
                fallback,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"dst\":{dst},\"wait_ns\":{wait_ns},\"fallback\":{fallback}"
                ));
            }
            TraceEvent::AckWindowSlide {
                node,
                peer,
                newly_acked,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"peer\":{peer},\"newly_acked\":{newly_acked}"
                ));
            }
            TraceEvent::FallbackToCsma {
                node,
                timeout_streak,
            } => {
                s.push_str(&format!(
                    ",\"node\":{node},\"timeout_streak\":{timeout_streak}"
                ));
            }
            TraceEvent::FaultInjected { kind, node } => {
                s.push_str(",\"kind\":");
                json::push_str_lit(&mut s, kind);
                s.push_str(&format!(",\"node\":{node}"));
            }
        }
        s.push('}');
        s
    }
}

/// Bounded ring buffer of trace records.
#[derive(Debug)]
pub struct TraceSink {
    cap: usize,
    buf: VecDeque<TraceRecord>,
    next_seq: u64,
    dropped: u64,
}

impl TraceSink {
    /// A sink retaining at most `capacity` records (at least 1).
    pub fn new(capacity: usize) -> TraceSink {
        let cap = capacity.max(1);
        TraceSink {
            cap,
            buf: VecDeque::with_capacity(cap.min(4096)),
            next_seq: 0,
            dropped: 0,
        }
    }

    /// Record an event at simulation time `at_ns`, evicting the oldest
    /// record if the buffer is full.
    #[inline]
    pub fn push(&mut self, at_ns: u64, ev: TraceEvent) {
        if self.buf.len() == self.cap {
            self.buf.pop_front();
            self.dropped += 1;
        }
        self.buf.push_back(TraceRecord {
            seq: self.next_seq,
            at_ns,
            ev,
        });
        self.next_seq += 1;
    }

    /// Records currently retained.
    pub fn len(&self) -> usize {
        self.buf.len()
    }

    /// True when nothing has been retained.
    pub fn is_empty(&self) -> bool {
        self.buf.is_empty()
    }

    /// Total events ever emitted (retained + dropped).
    pub fn emitted(&self) -> u64 {
        self.next_seq
    }

    /// Records shed to honour the capacity.
    pub fn dropped(&self) -> u64 {
        self.dropped
    }

    /// The retained records, oldest first.
    pub fn records(&self) -> impl Iterator<Item = &TraceRecord> {
        self.buf.iter()
    }

    /// Deterministic JSONL dump of the retained records (one object per
    /// line, trailing newline after each).
    pub fn to_jsonl(&self) -> String {
        let mut out = String::new();
        for r in &self.buf {
            out.push_str(&r.to_json());
            out.push('\n');
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn ring_evicts_oldest_and_counts_drops() {
        let mut sink = TraceSink::new(2);
        for node in 0..5u32 {
            sink.push(
                u64::from(node) * 10,
                TraceEvent::FallbackToCsma {
                    node,
                    timeout_streak: 3,
                },
            );
        }
        assert_eq!(sink.len(), 2);
        assert_eq!(sink.dropped(), 3);
        assert_eq!(sink.emitted(), 5);
        let seqs: Vec<u64> = sink.records().map(|r| r.seq).collect();
        assert_eq!(seqs, vec![3, 4]);
    }

    #[test]
    fn jsonl_is_stable_and_parseable_shape() {
        let mut sink = TraceSink::new(8);
        sink.push(
            100,
            TraceEvent::TxStart {
                node: 1,
                kind: "cmap_header",
                bytes: 24,
                rate_mbps: 6,
            },
        );
        sink.push(
            200,
            TraceEvent::DeferDecision {
                node: 1,
                dst: 2,
                wait_ns: 1500,
                fallback: false,
            },
        );
        sink.push(
            300,
            TraceEvent::FaultInjected {
                kind: "lockup",
                node: 0,
            },
        );
        let dump = sink.to_jsonl();
        assert_eq!(
            dump,
            "{\"seq\":0,\"at_ns\":100,\"ev\":\"tx_start\",\"node\":1,\
             \"kind\":\"cmap_header\",\"bytes\":24,\"rate_mbps\":6}\n\
             {\"seq\":1,\"at_ns\":200,\"ev\":\"defer_decision\",\"node\":1,\
             \"dst\":2,\"wait_ns\":1500,\"fallback\":false}\n\
             {\"seq\":2,\"at_ns\":300,\"ev\":\"fault_injected\",\
             \"kind\":\"lockup\",\"node\":0}\n"
        );
        // Dumping twice is byte-identical.
        assert_eq!(dump, sink.to_jsonl());
    }

    #[test]
    fn every_event_kind_serializes() {
        let events = [
            TraceEvent::TxStart {
                node: 0,
                kind: "dot11_data",
                bytes: 1464,
                rate_mbps: 6,
            },
            TraceEvent::DeferDecision {
                node: 0,
                dst: 1,
                wait_ns: 1,
                fallback: true,
            },
            TraceEvent::AckWindowSlide {
                node: 0,
                peer: 1,
                newly_acked: 8,
            },
            TraceEvent::FallbackToCsma {
                node: 0,
                timeout_streak: 4,
            },
            TraceEvent::FaultInjected {
                kind: "node_down",
                node: 3,
            },
        ];
        for ev in events {
            let mut sink = TraceSink::new(1);
            sink.push(7, ev);
            let line = sink.to_jsonl();
            assert!(
                line.contains(&format!("\"ev\":\"{}\"", ev.kind())),
                "{line}"
            );
            assert!(line.ends_with('\n'));
        }
    }
}
