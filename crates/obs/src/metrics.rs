//! Typed metric registries.
//!
//! Every counter and gauge the harness records is declared here, once, with
//! its stable dotted name. The enums are dense (`id as usize` indexes a flat
//! array in `cmap_sim::Stats`), the names are `'static`, and `from_name`
//! gives the deprecated string API a migration path without a heap lookup
//! on the hot path.
//!
//! Adding a metric is a one-line edit to the relevant `define_*!` block;
//! the name must keep the `layer.event` dotted convention because report
//! consumers and the `watchdog.*` prefix filter rely on it.

macro_rules! define_ids {
    ($(#[$meta:meta])* $vis:vis enum $ty:ident { $($(#[$vmeta:meta])* $variant:ident => $name:literal,)+ }) => {
        $(#[$meta])*
        #[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
        $vis enum $ty {
            $($(#[$vmeta])* $variant,)+
        }

        impl $ty {
            /// Number of declared ids (the dense index space).
            pub const COUNT: usize = [$($name),+].len();

            /// Every id, in declaration order.
            pub const ALL: [$ty; Self::COUNT] = [$($ty::$variant),+];

            /// The id's stable dotted name.
            #[inline]
            pub const fn name(self) -> &'static str {
                match self {
                    $($ty::$variant => $name,)+
                }
            }

            /// Dense index for array-backed storage.
            #[inline]
            pub const fn idx(self) -> usize {
                self as usize
            }

            /// Resolve a dotted name back to its id (compat shims only —
            /// never on the hot path).
            pub fn from_name(name: &str) -> Option<$ty> {
                match name {
                    $($name => Some($ty::$variant),)+
                    _ => None,
                }
            }
        }
    };
}

define_ids! {
    /// Registry of every run counter. Grouped by the layer that bumps it:
    /// `sim.*` engine, `stats.*` bookkeeping, `watchdog.*` invariant
    /// violations, `fault.*` injected faults, `dcf.*` the 802.11 baseline
    /// MAC, `cmap.*` the paper's MAC.
    pub enum CounterId {
        // Engine (crates/sim).
        /// Transmissions started.
        SimTx => "sim.tx",
        /// Frames decoded successfully.
        SimRxOk => "sim.rx_ok",
        /// Locked frames that failed to decode.
        SimRxFail => "sim.rx_fail",
        /// Clean preamble locks.
        SimLock => "sim.lock",
        /// Message-in-message captures.
        SimCapture => "sim.capture",
        /// Deliveries naming a flow the world does not know.
        SimUnknownFlow => "sim.unknown_flow",
        /// Deliveries at a node that is not the flow's destination.
        SimMisdelivered => "sim.misdelivered",
        // PHY hot path (crates/phy table, bumped by crates/sim).
        /// BER interpolation-table lookups while grading receptions.
        PhyBerTableLookup => "phy.ber_table_lookup",
        // Scheduler (crates/sim timing wheel).
        /// Events re-filed from an upper wheel level during a cascade.
        SimSchedCascades => "sim.sched_cascades",
        // Statistics bookkeeping (crates/sim).
        /// Per-seq vpkt flag entries evicted to honour the cap.
        StatsVpktEvicted => "stats.vpkt_evicted",
        // Invariant watchdog (crates/sim).
        /// Events observed out of time order.
        WatchdogTimeRegress => "watchdog.time_regress",
        /// Radio state-machine invariant failures.
        WatchdogRadioState => "watchdog.radio_state",
        /// Refused transmit while already transmitting.
        WatchdogHalfDuplex => "watchdog.half_duplex",
        /// Live nodes with data but no MAC activity in the window.
        WatchdogStalled => "watchdog.stalled",
        // Fault injection (crates/sim).
        /// Receptions dropped because the radio went down mid-frame.
        FaultRxDropped => "fault.rx_dropped",
        /// Node churn: power-off actions.
        FaultNodeDown => "fault.node_down",
        /// Node churn: power-on actions.
        FaultNodeUp => "fault.node_up",
        /// Radio lockup starts.
        FaultLockup => "fault.lockup",
        /// Radio lockup recoveries.
        FaultLockupEnd => "fault.lockup_end",
        /// Decoded frames corrupted by injection (late CRC escape).
        FaultCorrupted => "fault.corrupted",
        /// Frames delivered twice by injection.
        FaultDupDelivered => "fault.dup_delivered",
        /// MAC callbacks swallowed while the node was down.
        FaultDispatchSuppressed => "fault.dispatch_suppressed",
        /// Transmissions blocked by a disabled radio at apply time.
        FaultTxBlocked => "fault.tx_blocked",
        // 802.11 DCF baseline (crates/mac80211).
        /// Data frames transmitted.
        DcfTxData => "dcf.tx_data",
        /// ACK timeouts.
        DcfAckTimeout => "dcf.ack_timeout",
        /// Frames dropped at the retry limit.
        DcfDrop => "dcf.drop",
        /// Retransmissions.
        DcfRetx => "dcf.retx",
        /// ACKs received for the outstanding frame.
        DcfAckOk => "dcf.ack_ok",
        /// Restarts after a crash.
        DcfRestart => "dcf.restart",
        /// ACKs transmitted.
        DcfAckTx => "dcf.ack_tx",
        /// ACK transmissions the radio refused.
        DcfAckTxBlocked => "dcf.ack_tx_blocked",
        /// `on_tx_done` with nothing outstanding.
        DcfUnexpectedTxDone => "dcf.unexpected_tx_done",
        /// EIFS deferrals after an undecodable frame.
        DcfEifs => "dcf.eifs",
        // CMAP (crates/core).
        /// Window full with nothing repacked: retransmission stall.
        CmapRtxStall => "cmap.rtx_stall",
        /// Virtual packets retransmitted.
        CmapRtxVpkt => "cmap.rtx_vpkt",
        /// Transmission decisions that deferred (§3.2).
        CmapDefer => "cmap.defer",
        /// Defer decisions taken while the conservative CSMA fallback was
        /// active (stale conflict map).
        CmapCsmaFallback => "cmap.csma_fallback",
        /// Virtual packets started on the air.
        CmapTxVpkt => "cmap.tx_vpkt",
        /// Virtual-packet starts the radio refused.
        CmapTxBlocked => "cmap.tx_blocked",
        /// Virtual packets aborted mid-burst.
        CmapVpktAbort => "cmap.vpkt_abort",
        /// Retransmitted virtual packets completed.
        CmapRtxVpktDone => "cmap.rtx_vpkt_done",
        /// Contention-window increases from reported loss (Fig 7).
        CmapCwIncrease => "cmap.cw_increase",
        /// ACKs received.
        CmapAckRx => "cmap.ack_rx",
        /// Data packets newly acknowledged.
        CmapPktsAcked => "cmap.pkts_acked",
        /// Receiver-side sender-reboot detections.
        CmapPeerReset => "cmap.peer_reset",
        /// Duplicate finalizations suppressed.
        CmapDupFinalize => "cmap.dup_finalize",
        /// ACK transmissions the radio refused.
        CmapAckBlocked => "cmap.ack_blocked",
        /// ACKs transmitted.
        CmapAckTx => "cmap.ack_tx",
        /// Conflict-map entries evicted by TTL.
        CmapExpiredEvicted => "cmap.expired_evicted",
        /// Peer state entries evicted by TTL.
        CmapPeerEvicted => "cmap.peer_evicted",
        /// Interferer-list broadcasts sent.
        CmapIlBroadcast => "cmap.il_broadcast",
        /// Interferer-list broadcasts the radio refused.
        CmapIlBlocked => "cmap.il_blocked",
        /// Restarts after a crash.
        CmapRestart => "cmap.restart",
        /// ACK timeouts.
        CmapAckTimeout => "cmap.ack_timeout",
        /// Data packets requeued for retransmission.
        CmapRtxPkt => "cmap.rtx_pkt",
        /// Data packets abandoned at the retransmission bound.
        CmapRtxGiveUp => "cmap.rtx_give_up",
        /// `on_tx_done` with nothing outstanding.
        CmapUnexpectedTxDone => "cmap.unexpected_tx_done",
        // Run supervision (crates/exec counters, mirrored into reports by
        // the bench harness — no simulated node ever bumps these).
        /// Job attempts that ended in a caught panic (including retries).
        ExecJobPanic => "exec.job_panic",
        /// Retry attempts dispatched for failed jobs.
        ExecJobRetry => "exec.job_retry",
        /// Jobs that exhausted all retries and were quarantined.
        ExecJobQuarantined => "exec.job_quarantined",
    }
}

define_ids! {
    /// Registry of every gauge (last-write-wins level readings, recorded at
    /// deterministic points of the run so snapshots stay comparable).
    pub enum GaugeId {
        /// Transmission records still held when the run clock stopped.
        SimInflightTx => "sim.inflight_tx",
        /// Events still pending in the scheduler when the run clock stopped.
        SimSchedPending => "sim.sched_pending",
        /// Largest scheduler occupancy (pending events) the run reached.
        SimSchedMaxOccupancy => "sim.sched_max_occupancy",
        /// Trace records dropped by the ring buffer (0 when tracing is off).
        TraceDropped => "trace.dropped",
        /// Frame-pool slots still claimed when the run clock stopped
        /// (mirrors `sim.inflight_tx`; must drain to ~0 at quiesce).
        PoolFramesLive => "pool.frames_live",
        /// Frame-pool slot recycle events (frees) over the whole run.
        PoolRecycled => "pool.recycled",
        /// Most frame-pool slots claimed at once over the whole run.
        PoolHighWater => "pool.high_water",
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for id in CounterId::ALL {
            assert_eq!(CounterId::from_name(id.name()), Some(id));
        }
        for id in GaugeId::ALL {
            assert_eq!(GaugeId::from_name(id.name()), Some(id));
        }
        assert_eq!(CounterId::from_name("no.such.counter"), None);
    }

    #[test]
    fn indices_are_dense_and_unique() {
        for (i, id) in CounterId::ALL.iter().enumerate() {
            assert_eq!(id.idx(), i);
        }
        assert_eq!(CounterId::ALL.len(), CounterId::COUNT);
    }

    #[test]
    fn names_are_unique_and_dotted() {
        let mut names: Vec<&str> = CounterId::ALL.iter().map(|id| id.name()).collect();
        names.extend(GaugeId::ALL.iter().map(|id| id.name()));
        let mut sorted = names.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), names.len(), "duplicate metric name");
        for n in names {
            assert!(n.contains('.'), "metric `{n}` must be layer.event dotted");
        }
    }

    #[test]
    fn watchdog_group_is_prefix_filterable() {
        let watchdog: Vec<&str> = CounterId::ALL
            .iter()
            .map(|id| id.name())
            .filter(|n| n.starts_with("watchdog."))
            .collect();
        assert_eq!(watchdog.len(), 4);
    }
}
