//! # cmap-obs — structured observability for the CMAP reproduction
//!
//! The harness-wide backbone for everything a run can tell you about
//! itself, designed around three contracts:
//!
//! * **Typed, not stringly-typed.** Counters and gauges are enum keys
//!   ([`CounterId`], [`GaugeId`]) with static names; the hot path indexes a
//!   flat array instead of probing a string-keyed map, and a typo in a
//!   metric name is a compile error instead of a silent zero.
//! * **Deterministic by construction.** Trace dumps ([`TraceSink`]) and run
//!   reports ([`RunReport`], [`SuiteReport`]) serialize in a fixed field
//!   order with deterministic number formatting, so two same-seed runs
//!   produce byte-identical artifacts. Wall-clock derived data is confined
//!   to the `timing` block, which every writer can exclude.
//! * **Off the simulation path.** Nothing in this crate reads a clock or
//!   an entropy source (cmap-lint's R2 holds crate-wide); the event-loop
//!   profiler ([`LoopProfile`]) is *fed* wall-clock durations by the
//!   harness shell and only does arithmetic on them.
//!
//! | Module | Provides |
//! |---|---|
//! | [`alloc`] | opt-in counting global allocator for perf baselines |
//! | [`metrics`] | `CounterId` / `GaugeId` registries with static names |
//! | [`trace`] | typed ring-buffer trace sink with deterministic JSONL dump |
//! | [`profile`] | event-loop dispatch/wall-clock profile, events/sec meter |
//! | [`report`] | `RunReport` / `SuiteReport` manifest writers (`--json`) |
//! | [`json`] | minimal deterministic JSON encoding helpers |

pub mod alloc;
pub mod artifact;
pub mod json;
pub mod metrics;
pub mod profile;
pub mod report;
pub mod rss;
pub mod trace;

pub use artifact::{atomic_write, fnv1a64, Manifest, MANIFEST_SCHEMA};
pub use metrics::{CounterId, GaugeId};
pub use profile::LoopProfile;
pub use report::{
    FailedCell, FailureBlock, FigureEntry, MetricValue, RunReport, SpecBlock, SuiteReport,
    TimingBlock, SCHEMA,
};
pub use trace::{TraceEvent, TraceRecord, TraceSink};
