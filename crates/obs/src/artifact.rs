//! Crash-safe artifact I/O: atomic writes and content-hash manifests.
//!
//! A killed process must never leave a half-written `BENCH_*.json` behind,
//! and a resumed suite must be able to tell *finished* artifacts from
//! torn ones. Two pieces provide that:
//!
//! * [`atomic_write`] — the workspace-wide rule for artifact writers:
//!   write to `<path>.tmp`, fsync, then `rename` into place. On every
//!   platform the suite targets, the rename is atomic within a
//!   filesystem, so readers observe either the old bytes or the complete
//!   new bytes, never a prefix.
//! * [`Manifest`] — a tiny text-format completion ledger (`cmap-manifest/v1`)
//!   mapping artifact file names to FNV-1a content hashes. `repro_all`
//!   rewrites it (atomically) after each figure completes; `--resume`
//!   trusts an artifact only if it is present *and* hashes to its
//!   manifest entry, so torn or stale files are simply re-run.
//!
//! The manifest is deliberately line-oriented text, not JSON: the
//! workspace has no JSON parser (writers are hand-rolled), and a
//! one-entry-per-line format stays trivially greppable in CI logs.

use std::collections::BTreeMap;
use std::io::Write as _;
use std::path::Path;

/// Manifest format identifier (first line of every manifest file).
pub const MANIFEST_SCHEMA: &str = "cmap-manifest/v1";

/// Write `bytes` to `path` atomically: temp file, fsync, rename.
///
/// The temp file lives next to the target (`<path>.tmp`) so the rename
/// never crosses a filesystem boundary.
pub fn atomic_write<P: AsRef<Path>>(path: P, bytes: &[u8]) -> std::io::Result<()> {
    let path = path.as_ref();
    let mut tmp_name = path.as_os_str().to_owned();
    tmp_name.push(".tmp");
    let tmp = std::path::PathBuf::from(tmp_name);
    {
        let mut f = std::fs::File::create(&tmp)?;
        f.write_all(bytes)?;
        f.sync_all()?;
    }
    std::fs::rename(&tmp, path)
}

/// 64-bit FNV-1a content hash. Not cryptographic — this guards against
/// torn writes and stale artifacts, not adversaries — but deterministic,
/// dependency-free, and stable across platforms.
pub fn fnv1a64(bytes: &[u8]) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for &b in bytes {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// A completion ledger for a directory of artifacts.
///
/// Text format, one record per line:
///
/// ```text
/// cmap-manifest/v1
/// meta <free-form run identity line>
/// <16-hex-digit fnv1a64> <file name>
/// ```
///
/// Entries serialize sorted by file name, so the manifest itself is
/// deterministic for a given completion set.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Manifest {
    /// Run-identity line (seed/effort/configs); a resumed run refuses a
    /// manifest whose meta does not match its own parameters.
    pub meta: String,
    entries: BTreeMap<String, u64>,
}

impl Manifest {
    /// An empty manifest carrying `meta` as its run-identity line.
    pub fn new(meta: &str) -> Manifest {
        assert!(!meta.contains('\n'), "manifest meta must be a single line");
        Manifest {
            meta: meta.to_string(),
            entries: BTreeMap::new(),
        }
    }

    /// Record (or overwrite) `name` as complete with the hash of `bytes`.
    pub fn record(&mut self, name: &str, bytes: &[u8]) {
        assert!(
            !name.is_empty() && !name.contains(' ') && !name.contains('\n'),
            "manifest entry names must be single non-empty tokens: {name:?}"
        );
        self.entries.insert(name.to_string(), fnv1a64(bytes));
    }

    /// Whether `name` has a completion record.
    pub fn contains(&self, name: &str) -> bool {
        self.entries.contains_key(name)
    }

    /// Whether `bytes` matches the recorded hash for `name`.
    pub fn verify(&self, name: &str, bytes: &[u8]) -> bool {
        self.entries.get(name) == Some(&fnv1a64(bytes))
    }

    /// Number of completion records.
    pub fn len(&self) -> usize {
        self.entries.len()
    }

    /// True when nothing has been recorded yet.
    pub fn is_empty(&self) -> bool {
        self.entries.is_empty()
    }

    /// Serialize to the line-oriented text format.
    pub fn to_text(&self) -> String {
        let mut out = String::new();
        out.push_str(MANIFEST_SCHEMA);
        out.push('\n');
        out.push_str("meta ");
        out.push_str(&self.meta);
        out.push('\n');
        for (name, hash) in &self.entries {
            out.push_str(&format!("{hash:016x} {name}\n"));
        }
        out
    }

    /// Parse the text format back. Any malformed line is an error — a
    /// torn manifest must invalidate the whole resume state, not part
    /// of it.
    pub fn parse(text: &str) -> Result<Manifest, String> {
        let mut lines = text.lines();
        match lines.next() {
            Some(MANIFEST_SCHEMA) => {}
            other => return Err(format!("bad manifest header: {other:?}")),
        }
        let meta = match lines.next() {
            Some(line) => line
                .strip_prefix("meta ")
                .ok_or_else(|| format!("bad manifest meta line: {line:?}"))?
                .to_string(),
            None => return Err("manifest missing meta line".to_string()),
        };
        let mut entries = BTreeMap::new();
        for line in lines {
            let (hash_hex, name) = line
                .split_once(' ')
                .ok_or_else(|| format!("bad manifest entry: {line:?}"))?;
            if hash_hex.len() != 16 || name.is_empty() || name.contains(' ') {
                return Err(format!("bad manifest entry: {line:?}"));
            }
            let hash = u64::from_str_radix(hash_hex, 16)
                .map_err(|e| format!("bad manifest hash in {line:?}: {e}"))?;
            entries.insert(name.to_string(), hash);
        }
        Ok(Manifest { meta, entries })
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn scratch_path(name: &str) -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("cmap-obs-artifact-{}", std::process::id()));
        std::fs::create_dir_all(&dir).expect("create scratch dir");
        dir.join(name)
    }

    #[test]
    fn atomic_write_leaves_no_temp_file() {
        let path = scratch_path("atomic.txt");
        atomic_write(&path, b"first").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"first");
        atomic_write(&path, b"second, longer than before").unwrap();
        assert_eq!(std::fs::read(&path).unwrap(), b"second, longer than before");
        let mut tmp = path.as_os_str().to_owned();
        tmp.push(".tmp");
        assert!(!std::path::Path::new(&tmp).exists());
    }

    #[test]
    fn fnv1a64_matches_reference_vectors() {
        // Published FNV-1a test vectors.
        assert_eq!(fnv1a64(b""), 0xcbf2_9ce4_8422_2325);
        assert_eq!(fnv1a64(b"a"), 0xaf63_dc4c_8601_ec8c);
        assert_eq!(fnv1a64(b"foobar"), 0x85944171f73967e8);
    }

    #[test]
    fn manifest_round_trips_and_sorts() {
        let mut m = Manifest::new("seed=42 effort=quick");
        m.record("fig_b.json", b"bbb");
        m.record("fig_a.json", b"aaa");
        let text = m.to_text();
        // Sorted entries, schema header first.
        let lines: Vec<&str> = text.lines().collect();
        assert_eq!(lines[0], MANIFEST_SCHEMA);
        assert_eq!(lines[1], "meta seed=42 effort=quick");
        assert!(lines[2].ends_with(" fig_a.json"));
        assert!(lines[3].ends_with(" fig_b.json"));
        let back = Manifest::parse(&text).unwrap();
        assert_eq!(back, m);
        assert!(back.verify("fig_a.json", b"aaa"));
        assert!(!back.verify("fig_a.json", b"tampered"));
        assert!(!back.verify("fig_missing.json", b"aaa"));
    }

    #[test]
    fn manifest_rejects_torn_text() {
        assert!(Manifest::parse("").is_err());
        assert!(Manifest::parse("not-a-manifest\nmeta x\n").is_err());
        assert!(Manifest::parse("cmap-manifest/v1\n").is_err());
        assert!(Manifest::parse("cmap-manifest/v1\nmeta x\nbadline\n").is_err());
        // Truncated hash (torn final line).
        assert!(Manifest::parse("cmap-manifest/v1\nmeta x\n1234 f.json\n").is_err());
    }
}
