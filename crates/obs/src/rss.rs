//! Resident-set-size probes for scale benchmarking.
//!
//! The scale sweep charts peak resident memory against node count; the
//! only portable-enough source for that is the kernel's own accounting in
//! `/proc/self/status` (`VmHWM` for the high-water mark, `VmRSS` for the
//! current value). Everything here is observability: values feed
//! `RunReport` metrics and never influence simulation state, so the
//! non-Linux fallback is simply `None`.

/// Peak resident set size of this process in bytes (`VmHWM`), or `None`
/// where `/proc` is unavailable.
pub fn peak_rss_bytes() -> Option<u64> {
    proc_status_kib("VmHWM:").map(|kib| kib * 1024)
}

/// Current resident set size of this process in bytes (`VmRSS`), or
/// `None` where `/proc` is unavailable.
pub fn current_rss_bytes() -> Option<u64> {
    proc_status_kib("VmRSS:").map(|kib| kib * 1024)
}

/// Reset the peak-RSS high-water mark to the current RSS, so a later
/// [`peak_rss_bytes`] reads the peak *since this call*. Returns `false`
/// where the kernel interface is unavailable or refuses the write.
pub fn reset_peak() -> bool {
    #[cfg(target_os = "linux")]
    {
        // Writing "5" to clear_refs resets the peak counters (see
        // proc(5)); needs no privileges for the calling process itself.
        std::fs::write("/proc/self/clear_refs", "5").is_ok()
    }
    #[cfg(not(target_os = "linux"))]
    {
        false
    }
}

#[cfg(target_os = "linux")]
fn proc_status_kib(field: &str) -> Option<u64> {
    let status = std::fs::read_to_string("/proc/self/status").ok()?;
    let line = status.lines().find(|l| l.starts_with(field))?;
    // Format: "VmHWM:     123456 kB".
    line.split_whitespace().nth(1)?.parse().ok()
}

#[cfg(not(target_os = "linux"))]
fn proc_status_kib(_field: &str) -> Option<u64> {
    None
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    #[cfg(target_os = "linux")]
    fn rss_probes_read_plausible_values() {
        let peak = peak_rss_bytes().expect("VmHWM readable on linux");
        let cur = current_rss_bytes().expect("VmRSS readable on linux");
        // A running test binary holds at least a megabyte and (sanity
        // ceiling) less than a terabyte.
        assert!((1 << 20..1 << 40).contains(&peak), "{peak}");
        assert!((1 << 20..1 << 40).contains(&cur), "{cur}");
        assert!(peak >= cur, "peak {peak} < current {cur}");
    }

    #[test]
    fn reset_peak_does_not_panic() {
        // Some sandboxes deny the clear_refs write; both outcomes are
        // legal, the call just must not panic.
        let _ = reset_peak();
    }
}
