//! Machine-readable run reports (the `--json PATH` artifact).
//!
//! A [`RunReport`] is one figure/experiment's manifest: what was run (spec,
//! seeds, effort), what came out (named metric values), and how long it
//! took (the `timing` block). A [`SuiteReport`] aggregates many figure
//! reports plus an event-loop profile — `repro_all` writes one as
//! `BENCH_repro.json` to seed the repo's perf trajectory.
//!
//! **Determinism contract:** everything outside the `timing` blocks derives
//! from simulation state only, keys serialize sorted (`BTreeMap`) and
//! fields in fixed order, so two same-seed runs produce byte-identical
//! reports when serialized with `include_timing = false`. The `timing`
//! block is always the *last* key of its object, and the only place
//! wall-clock-derived numbers may appear.

use std::collections::BTreeMap;

use crate::json;
use crate::profile::LoopProfile;

/// Report schema identifier (bump on breaking shape changes).
pub const SCHEMA: &str = "cmap-obs/v1";

/// The run parameters block: which testbed, which seeds, how long.
#[derive(Debug, Clone, Default)]
pub struct SpecBlock {
    /// Testbed-generation seed (the "building").
    pub testbed_seed: u64,
    /// Run-randomness seed.
    pub run_seed: u64,
    /// Effort label (`quick` / `standard` / `full`).
    pub effort: String,
    /// Number of configurations evaluated (0 when not applicable).
    pub configs: u64,
    /// Simulated duration per run, seconds.
    pub duration_s: f64,
    /// Application payload bytes per packet.
    pub payload: u64,
}

impl SpecBlock {
    fn to_json(&self) -> String {
        format!(
            "{{\"testbed_seed\":{},\"run_seed\":{},\"effort\":{},\"configs\":{},\
             \"duration_s\":{},\"payload\":{}}}",
            self.testbed_seed,
            self.run_seed,
            {
                let mut s = String::new();
                json::push_str_lit(&mut s, &self.effort);
                s
            },
            self.configs,
            json::fmt_f64(self.duration_s),
            self.payload,
        )
    }
}

/// One named metric value.
#[derive(Debug, Clone, PartialEq)]
pub enum MetricValue {
    /// Unsigned count.
    Uint(u64),
    /// Measurement.
    Float(f64),
    /// Label / enum-ish value.
    Text(String),
}

impl MetricValue {
    fn to_json(&self) -> String {
        match self {
            MetricValue::Uint(v) => v.to_string(),
            MetricValue::Float(v) => json::fmt_f64(*v),
            MetricValue::Text(v) => {
                let mut s = String::new();
                json::push_str_lit(&mut s, v);
                s
            }
        }
    }
}

impl From<u64> for MetricValue {
    fn from(v: u64) -> MetricValue {
        MetricValue::Uint(v)
    }
}

impl From<usize> for MetricValue {
    fn from(v: usize) -> MetricValue {
        MetricValue::Uint(v as u64)
    }
}

impl From<f64> for MetricValue {
    fn from(v: f64) -> MetricValue {
        MetricValue::Float(v)
    }
}

impl From<&str> for MetricValue {
    fn from(v: &str) -> MetricValue {
        MetricValue::Text(v.to_string())
    }
}

impl From<String> for MetricValue {
    fn from(v: String) -> MetricValue {
        MetricValue::Text(v)
    }
}

/// Wall-clock timing of one figure run. Excluded from determinism
/// comparisons by construction (see module docs).
#[derive(Debug, Clone, Default)]
pub struct TimingBlock {
    /// Wall-clock seconds the figure took.
    pub wall_secs: f64,
}

impl TimingBlock {
    fn to_json(&self) -> String {
        format!("{{\"wall_secs\":{}}}", json::fmt_f64(self.wall_secs))
    }
}

/// One figure/experiment's machine-readable manifest.
#[derive(Debug, Clone)]
pub struct RunReport {
    /// Registry/bin name (e.g. `fig12_exposed`).
    pub figure: String,
    /// Human title (the banner heading).
    pub title: String,
    /// Run parameters.
    pub spec: SpecBlock,
    /// Named results, sorted by key at serialization.
    pub metrics: BTreeMap<String, MetricValue>,
    /// Wall-clock block (filled by the harness shell; `None` in library
    /// contexts).
    pub timing: Option<TimingBlock>,
}

impl RunReport {
    /// An empty report for `figure`.
    pub fn new(figure: &str, title: &str, spec: SpecBlock) -> RunReport {
        RunReport {
            figure: figure.to_string(),
            title: title.to_string(),
            spec,
            metrics: BTreeMap::new(),
            timing: None,
        }
    }

    /// Insert (or overwrite) a metric.
    pub fn metric(&mut self, key: &str, value: impl Into<MetricValue>) {
        self.metrics.insert(key.to_string(), value.into());
    }

    /// Check that every required metric key is present.
    pub fn validate(&self, required: &[&str]) -> Result<(), String> {
        let missing: Vec<&str> = required
            .iter()
            .filter(|k| !self.metrics.contains_key(**k))
            .copied()
            .collect();
        if missing.is_empty() {
            Ok(())
        } else {
            Err(format!(
                "report `{}` is missing required metrics: {}",
                self.figure,
                missing.join(", ")
            ))
        }
    }

    /// Serialize; `include_timing = false` yields the deterministic view.
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut s = String::from("{\"schema\":");
        json::push_str_lit(&mut s, SCHEMA);
        s.push_str(",\"figure\":");
        json::push_str_lit(&mut s, &self.figure);
        s.push_str(",\"title\":");
        json::push_str_lit(&mut s, &self.title);
        s.push_str(",\"spec\":");
        s.push_str(&self.spec.to_json());
        s.push_str(",\"metrics\":{");
        for (i, (k, v)) in self.metrics.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_key(&mut s, k);
            s.push_str(&v.to_json());
        }
        s.push('}');
        if include_timing {
            if let Some(t) = &self.timing {
                s.push_str(",\"timing\":");
                s.push_str(&t.to_json());
            }
        }
        s.push('}');
        s
    }
}

/// One failed (figure, point, seed) cell of a suite run.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct FailedCell {
    /// Figure the cell belonged to.
    pub figure: String,
    /// Job label identifying the cell within the figure (or the figure
    /// itself when the whole run panicked outside the pool).
    pub label: String,
    /// Attempts made before quarantine.
    pub attempts: u64,
    /// The final panic message.
    pub error: String,
}

impl FailedCell {
    fn to_json(&self) -> String {
        let mut s = String::from("{\"figure\":");
        json::push_str_lit(&mut s, &self.figure);
        s.push_str(",\"label\":");
        json::push_str_lit(&mut s, &self.label);
        s.push_str(&format!(",\"attempts\":{},\"error\":", self.attempts));
        json::push_str_lit(&mut s, &self.error);
        s.push('}');
        s
    }
}

/// The suite's supervision outcome: the `exec.job_*` counter values plus
/// each quarantined cell. Deterministic (no wall clock), so it serializes
/// in both report views, after `figures` and before the timing region.
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct FailureBlock {
    /// Value of the `exec.job_panic` counter.
    pub panics: u64,
    /// Value of the `exec.job_retry` counter.
    pub retries: u64,
    /// Value of the `exec.job_quarantined` counter.
    pub quarantined: u64,
    /// Every quarantined cell, in quarantine order.
    pub cells: Vec<FailedCell>,
}

impl FailureBlock {
    fn to_json(&self) -> String {
        // Keys are the typed counter names (`CounterId::ExecJob*`); the
        // `failure_block_keys_match_counter_registry` test pins that.
        let mut s = format!(
            "{{\"exec.job_panic\":{},\"exec.job_retry\":{},\"exec.job_quarantined\":{},\"cells\":[",
            self.panics, self.retries, self.quarantined
        );
        for (i, c) in self.cells.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&c.to_json());
        }
        s.push_str("]}");
        s
    }
}

/// One entry of a suite's `figures` array: either a structured report
/// built this run, or the verbatim JSON of a figure restored from a
/// previous run's hash-valid artifact (`repro_all --resume`).
#[derive(Debug, Clone)]
pub enum FigureEntry {
    /// A report assembled in this process.
    Report(RunReport),
    /// Pre-serialized report JSON spliced from a completed artifact. Must
    /// be one JSON object in `RunReport::to_json(true)` shape.
    Raw(String),
}

impl From<RunReport> for FigureEntry {
    fn from(r: RunReport) -> FigureEntry {
        FigureEntry::Report(r)
    }
}

impl FigureEntry {
    fn to_json(&self, include_timing: bool) -> String {
        match self {
            FigureEntry::Report(r) => r.to_json(include_timing),
            FigureEntry::Raw(raw) if include_timing => raw.clone(),
            FigureEntry::Raw(raw) => strip_trailing_timing(raw),
        }
    }
}

/// Drop a trailing `,"timing":{...}` member from a serialized
/// [`RunReport`]. Sound because `timing` is the *last* key by construction
/// and the `"timing"` byte sequence cannot occur inside any string literal
/// (its quotes would be escaped), so the rightmost match is the real key.
fn strip_trailing_timing(raw: &str) -> String {
    match raw.rfind(",\"timing\":") {
        Some(pos) => {
            let mut s = raw[..pos].to_string();
            s.push('}');
            s
        }
        None => raw.to_string(),
    }
}

/// Aggregate of many figure reports (what `repro_all --json` writes).
#[derive(Debug, Clone)]
pub struct SuiteReport {
    /// Suite name (e.g. `repro_all`).
    pub suite: String,
    /// The shared CLI-level spec the suite ran under.
    pub spec: SpecBlock,
    /// Per-figure entries, in run order.
    pub figures: Vec<FigureEntry>,
    /// Supervision outcome; `None` omits the key (library contexts).
    pub failures: Option<FailureBlock>,
    /// Suite wall-clock, if measured.
    pub timing: Option<TimingBlock>,
    /// Event-loop profile, if the harness ran one (wall-clock derived, so
    /// serialized inside the timing region).
    pub profile: Option<LoopProfile>,
}

impl SuiteReport {
    /// An empty suite report.
    pub fn new(suite: &str, spec: SpecBlock) -> SuiteReport {
        SuiteReport {
            suite: suite.to_string(),
            spec,
            figures: Vec::new(),
            failures: None,
            timing: None,
            profile: None,
        }
    }

    /// Append a figure report built this run.
    pub fn push(&mut self, report: RunReport) {
        self.figures.push(FigureEntry::Report(report));
    }

    /// Splice in a pre-serialized report restored from a completed
    /// artifact (see [`FigureEntry::Raw`]).
    pub fn push_raw(&mut self, raw_json: String) {
        self.figures.push(FigureEntry::Raw(raw_json));
    }

    /// Serialize; `include_timing = false` yields the deterministic view
    /// (per-figure timing blocks and the loop profile are dropped too).
    pub fn to_json(&self, include_timing: bool) -> String {
        let mut s = String::from("{\"schema\":");
        json::push_str_lit(&mut s, SCHEMA);
        s.push_str(",\"suite\":");
        json::push_str_lit(&mut s, &self.suite);
        s.push_str(",\"spec\":");
        s.push_str(&self.spec.to_json());
        s.push_str(",\"figures\":[");
        for (i, f) in self.figures.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            s.push_str(&f.to_json(include_timing));
        }
        s.push(']');
        if let Some(fb) = &self.failures {
            s.push_str(",\"failures\":");
            s.push_str(&fb.to_json());
        }
        if include_timing {
            s.push_str(",\"timing\":{");
            let mut first = true;
            if let Some(t) = &self.timing {
                s.push_str("\"wall_secs\":");
                s.push_str(&json::fmt_f64(t.wall_secs));
                first = false;
            }
            if let Some(p) = &self.profile {
                if !first {
                    s.push(',');
                }
                s.push_str("\"loop_profile\":");
                s.push_str(&p.to_json());
            }
            s.push('}');
        }
        s.push('}');
        s
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn spec() -> SpecBlock {
        SpecBlock {
            testbed_seed: 42,
            run_seed: 1,
            effort: "quick".to_string(),
            configs: 12,
            duration_s: 10.0,
            payload: 1400,
        }
    }

    #[test]
    fn run_report_shape_and_key_order() {
        let mut r = RunReport::new("fig12_exposed", "Fig 12", spec());
        r.metric("median_cmap_mbps", 8.25);
        r.metric("median_cs_mbps", 4.0);
        r.metric("configs_run", 12usize);
        r.timing = Some(TimingBlock { wall_secs: 3.5 });
        let det = r.to_json(false);
        assert!(det.starts_with("{\"schema\":\"cmap-obs/v1\",\"figure\":\"fig12_exposed\""));
        // BTreeMap: keys sorted regardless of insertion order.
        let a = det.find("configs_run").unwrap();
        let b = det.find("median_cmap_mbps").unwrap();
        let c = det.find("median_cs_mbps").unwrap();
        assert!(a < b && b < c, "{det}");
        assert!(!det.contains("timing"));
        let full = r.to_json(true);
        assert!(full.contains("\"timing\":{\"wall_secs\":3.5}"));
        // Timing is the last key by construction.
        assert!(full.ends_with("\"timing\":{\"wall_secs\":3.5}}"));
    }

    #[test]
    fn validate_reports_missing_keys() {
        let mut r = RunReport::new("f", "t", spec());
        r.metric("present", 1u64);
        assert!(r.validate(&["present"]).is_ok());
        let err = r.validate(&["present", "absent"]).unwrap_err();
        assert!(err.contains("absent"), "{err}");
        assert!(!err.contains("present,"), "{err}");
    }

    #[test]
    fn suite_report_drops_all_timing_in_deterministic_view() {
        let mut s = SuiteReport::new("repro_all", spec());
        let mut f = RunReport::new("fig12_exposed", "Fig 12", spec());
        f.metric("m", 1.5);
        f.timing = Some(TimingBlock { wall_secs: 2.0 });
        s.push(f);
        s.timing = Some(TimingBlock { wall_secs: 9.0 });
        let mut p = LoopProfile::new();
        p.record_slice(10, 100);
        s.profile = Some(p);
        let det = s.to_json(false);
        assert!(!det.contains("timing"), "{det}");
        assert!(!det.contains("loop_profile"), "{det}");
        let full = s.to_json(true);
        assert!(full.contains("\"wall_secs\":9"));
        assert!(full.contains("\"loop_profile\":{"));
        assert!(full.contains("\"wall_secs\":2"));
    }

    #[test]
    fn non_finite_floats_serialize_as_null() {
        let mut r = RunReport::new("f", "t", SpecBlock::default());
        r.metric("nan", f64::NAN);
        assert!(r.to_json(false).contains("\"nan\":null"));
    }

    #[test]
    fn raw_figure_entries_splice_verbatim_and_strip_timing() {
        let mut r = RunReport::new("fig13_hidden", "Fig 13", spec());
        r.metric("timing_label", "not,\"timing\": a decoy inside a string");
        r.timing = Some(TimingBlock { wall_secs: 4.25 });
        let full = r.to_json(true);
        let det = r.to_json(false);

        let mut s = SuiteReport::new("repro_all", spec());
        s.push_raw(full.clone());
        // With timing: the raw bytes appear verbatim. Without: the trailing
        // timing member is stripped, matching the structured serialization.
        assert!(s.to_json(true).contains(&full));
        assert!(s.to_json(false).contains(&det));
        assert!(!s.to_json(false).contains("wall_secs"));

        // A raw entry with no timing block passes through unchanged.
        assert_eq!(strip_trailing_timing(&det), det);
    }

    #[test]
    fn raw_and_structured_entries_serialize_identically() {
        let mut r = RunReport::new("calib_single_link", "§4.2", spec());
        r.metric("mbps", 5.04);
        r.timing = Some(TimingBlock { wall_secs: 1.0 });
        let mut structured = SuiteReport::new("repro_all", spec());
        structured.push(r.clone());
        let mut spliced = SuiteReport::new("repro_all", spec());
        spliced.push_raw(r.to_json(true));
        for include_timing in [false, true] {
            assert_eq!(
                structured.to_json(include_timing),
                spliced.to_json(include_timing)
            );
        }
    }

    #[test]
    fn failures_block_serializes_after_figures() {
        let mut s = SuiteReport::new("repro_all", spec());
        assert!(!s.to_json(true).contains("\"failures\""));
        s.failures = Some(FailureBlock {
            panics: 3,
            retries: 2,
            quarantined: 1,
            cells: vec![FailedCell {
                figure: "fig12_exposed".to_string(),
                label: "fig12_exposed[7]".to_string(),
                attempts: 3,
                error: "boom".to_string(),
            }],
        });
        s.timing = Some(TimingBlock { wall_secs: 9.0 });
        let full = s.to_json(true);
        let det = s.to_json(false);
        // Present in both views (the block is deterministic), between the
        // figures array and the timing region.
        for view in [&full, &det] {
            let f = view.find("\"figures\":").unwrap();
            let b = view.find("\"failures\":").unwrap();
            assert!(f < b, "{view}");
            assert!(view.contains(
                "\"failures\":{\"exec.job_panic\":3,\"exec.job_retry\":2,\
                 \"exec.job_quarantined\":1,\"cells\":[{\"figure\":\"fig12_exposed\",\
                 \"label\":\"fig12_exposed[7]\",\"attempts\":3,\"error\":\"boom\"}]}"
            ));
        }
        assert!(full.find("\"failures\":").unwrap() < full.find("\"timing\":").unwrap());
    }

    #[test]
    fn failure_block_keys_match_counter_registry() {
        use crate::metrics::CounterId;
        let json = FailureBlock::default().to_json();
        for id in [
            CounterId::ExecJobPanic,
            CounterId::ExecJobRetry,
            CounterId::ExecJobQuarantined,
        ] {
            assert!(
                json.contains(&format!("\"{}\":", id.name())),
                "failure block missing key {}",
                id.name()
            );
        }
    }
}
