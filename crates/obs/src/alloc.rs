//! Heap-allocation counting for perf baselines.
//!
//! [`CountingAlloc`] wraps the system allocator and counts every
//! `alloc`/`realloc` call. A binary opts in by declaring it as its global
//! allocator:
//!
//! ```ignore
//! #[global_allocator]
//! static ALLOC: cmap_obs::alloc::CountingAlloc = cmap_obs::alloc::CountingAlloc;
//! ```
//!
//! [`allocations`] then reports the process-wide count; in binaries that
//! did not install the wrapper it stays 0 and readers must treat the
//! figure as "not measured" (the perf artifact records it as-is, so a zero
//! from a non-instrumented binary is distinguishable from a real steady
//! state only by the binary's own documentation — `repro_all` installs
//! it).
//!
//! The count is a relaxed monotone meter: it orders nothing, never feeds
//! back into simulation behaviour, and is read only at figure boundaries
//! by the benchmark driver.

use std::alloc::{GlobalAlloc, Layout, System};
use std::sync::atomic::{AtomicU64, Ordering};

// cmap-analyze: allow(shared-state) — relaxed monotonic allocation meter for perf artifacts; never read by simulation state
static ALLOCATIONS: AtomicU64 = AtomicU64::new(0);

/// A [`System`]-backed allocator that counts allocation calls.
pub struct CountingAlloc;

// SAFETY-adjacent note: the wrapper adds only a relaxed counter bump on the
// allocation path — no locking, no allocation of its own — so it cannot
// recurse or change allocator semantics.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc(layout)
    }

    unsafe fn alloc_zeroed(&self, layout: Layout) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.alloc_zeroed(layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCATIONS.fetch_add(1, Ordering::Relaxed);
        System.realloc(ptr, layout, new_size)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }
}

/// Allocation calls since process start (0 when [`CountingAlloc`] is not
/// the global allocator of the running binary).
pub fn allocations() -> u64 {
    ALLOCATIONS.load(Ordering::Relaxed)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wrapper_counts_and_allocates() {
        // The test binary does not install the wrapper globally; exercise
        // it directly.
        let a = CountingAlloc;
        let before = allocations();
        let layout = Layout::from_size_align(64, 8).expect("layout");
        // SAFETY: layout is non-zero-size; the pointer is freed with the
        // same layout below.
        unsafe {
            let p = a.alloc(layout);
            assert!(!p.is_null());
            a.dealloc(p, layout);
            let p = a.alloc_zeroed(layout);
            assert!(!p.is_null());
            assert_eq!(*p, 0);
            a.dealloc(p, layout);
        }
        assert!(allocations() >= before + 2);
    }
}
