//! Event-loop self-profiling.
//!
//! The profile answers "how fast is the engine, and where do its events
//! go?" without touching the deterministic simulation path: the harness
//! shell steps a world in slices, reads the wall clock *outside* the
//! engine, and feeds each slice's `(events, wall_ns)` pair in here. This
//! module only does arithmetic — it never reads a clock itself, so the
//! whole crate stays clean under cmap-lint's wall-clock rule.
//!
//! Per-event-type dispatch counts come from the engine's own deterministic
//! counters (`World::event_counts`) and are attached via
//! [`LoopProfile::set_dispatch`].

use crate::json;

/// Number of log2 buckets in the slice wall-time histogram (covers 1 ns to
/// ~584 years per slice).
const HIST_BUCKETS: usize = 64;

/// Aggregated event-loop profile: dispatch mix, slice wall-time histogram,
/// and an events/sec meter.
#[derive(Debug, Clone)]
pub struct LoopProfile {
    slices: u64,
    total_events: u64,
    total_wall_ns: u64,
    min_slice_ns: u64,
    max_slice_ns: u64,
    /// `hist[i]` counts slices whose wall time fell in `[2^i, 2^(i+1))` ns.
    hist: [u64; HIST_BUCKETS],
    /// Per-event-type dispatch counts, in the order the engine reports them.
    dispatch: Vec<(String, u64)>,
    /// Worker-pool utilization `(jobs, batches, jobs_executed, busy_ns)`,
    /// attached by the harness when runs were fanned out.
    pool: Option<(usize, u64, u64, u64)>,
}

impl Default for LoopProfile {
    fn default() -> LoopProfile {
        LoopProfile {
            slices: 0,
            total_events: 0,
            total_wall_ns: 0,
            min_slice_ns: u64::MAX,
            max_slice_ns: 0,
            hist: [0; HIST_BUCKETS],
            dispatch: Vec::new(),
            pool: None,
        }
    }
}

impl LoopProfile {
    /// An empty profile.
    pub fn new() -> LoopProfile {
        LoopProfile::default()
    }

    /// Record one harness-timed slice: `events` processed in `wall_ns`
    /// nanoseconds of wall-clock time.
    pub fn record_slice(&mut self, events: u64, wall_ns: u64) {
        self.slices += 1;
        self.total_events += events;
        self.total_wall_ns += wall_ns;
        self.min_slice_ns = self.min_slice_ns.min(wall_ns);
        self.max_slice_ns = self.max_slice_ns.max(wall_ns);
        let bucket = (u64::BITS - 1)
            .saturating_sub(wall_ns.max(1).leading_zeros())
            .min(HIST_BUCKETS as u32 - 1) as usize;
        self.hist[bucket] += 1;
    }

    /// Attach the engine's deterministic per-event-type dispatch counts.
    pub fn set_dispatch<S: AsRef<str>>(&mut self, counts: &[(S, u64)]) {
        self.dispatch = counts
            .iter()
            .map(|(name, c)| (name.as_ref().to_string(), *c))
            .collect();
    }

    /// Slices recorded.
    pub fn slices(&self) -> u64 {
        self.slices
    }

    /// Total events across all slices.
    pub fn total_events(&self) -> u64 {
        self.total_events
    }

    /// Total wall-clock time across all slices, ns.
    pub fn total_wall_ns(&self) -> u64 {
        self.total_wall_ns
    }

    /// The events/sec meter: total events over total wall time (NaN before
    /// the first nonzero slice).
    pub fn events_per_sec(&self) -> f64 {
        // cmap-lint: allow(unit-cast) — wall-clock ns fed by the harness shell; plain meter arithmetic, off the sim path
        self.total_events as f64 / (self.total_wall_ns as f64 / 1e9)
    }

    /// Per-event-type dispatch counts, as attached.
    pub fn dispatch(&self) -> &[(String, u64)] {
        &self.dispatch
    }

    /// Attach worker-pool utilization: configured width, batches fanned
    /// out, jobs executed, and summed worker busy wall-time. `busy_ns` is
    /// wall-clock derived, which is why the whole block renders inside the
    /// report's `timing` section only.
    pub fn set_pool(&mut self, jobs: usize, batches: u64, jobs_executed: u64, busy_ns: u64) {
        self.pool = Some((jobs, batches, jobs_executed, busy_ns));
    }

    /// Worker-pool utilization, if attached.
    pub fn pool(&self) -> Option<(usize, u64, u64, u64)> {
        self.pool
    }

    /// Nonzero histogram buckets as `(bucket_floor_ns, slice_count)`.
    pub fn hist_buckets(&self) -> Vec<(u64, u64)> {
        self.hist
            .iter()
            .enumerate()
            .filter(|(_, &c)| c > 0)
            .map(|(i, &c)| (1u64 << i, c))
            .collect()
    }

    /// JSON object for the report's timing block (wall-clock derived, so it
    /// lives inside `timing` and is excluded from determinism comparisons).
    pub fn to_json(&self) -> String {
        let mut s = String::from("{");
        s.push_str(&format!(
            "\"slices\":{},\"events\":{},\"wall_ns\":{},\"events_per_sec\":{}",
            self.slices,
            self.total_events,
            self.total_wall_ns,
            json::fmt_f64(self.events_per_sec()),
        ));
        if self.slices > 0 {
            s.push_str(&format!(
                ",\"min_slice_ns\":{},\"max_slice_ns\":{}",
                self.min_slice_ns, self.max_slice_ns
            ));
        }
        s.push_str(",\"dispatch\":{");
        for (i, (name, c)) in self.dispatch.iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_key(&mut s, name);
            s.push_str(&c.to_string());
        }
        s.push_str("},\"slice_wall_hist\":{");
        for (i, (floor, c)) in self.hist_buckets().iter().enumerate() {
            if i > 0 {
                s.push(',');
            }
            json::push_key(&mut s, &floor.to_string());
            s.push_str(&c.to_string());
        }
        s.push('}');
        if let Some((jobs, batches, executed, busy_ns)) = self.pool {
            s.push_str(&format!(
                ",\"pool\":{{\"jobs\":{jobs},\"batches\":{batches},\
                 \"jobs_executed\":{executed},\"busy_ns\":{busy_ns}}}"
            ));
        }
        s.push('}');
        s
    }

    /// Small human-readable rendering for harness stderr/stdout.
    pub fn render_text(&self) -> String {
        let mut out = String::new();
        out.push_str(&format!(
            "event loop: {} events in {:.3}s wall over {} slices -> {:.0} events/sec\n",
            self.total_events,
            // cmap-lint: allow(unit-cast) — wall-clock ns rendered for humans; off the sim path
            self.total_wall_ns as f64 / 1e9,
            self.slices,
            self.events_per_sec(),
        ));
        for (name, c) in &self.dispatch {
            let share = if self.total_events > 0 {
                100.0 * *c as f64 / self.total_events as f64
            } else {
                0.0
            };
            out.push_str(&format!("  {name:<12} {c:>10}  ({share:5.1}%)\n"));
        }
        if self.slices > 0 {
            out.push_str("  slice wall-time histogram (log2 buckets):\n");
            for (floor, c) in self.hist_buckets() {
                out.push_str(&format!("    >= {floor:>12} ns: {c}\n"));
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn meter_and_histogram() {
        let mut p = LoopProfile::new();
        p.record_slice(1000, 1_000_000); // 1 ms -> bucket 2^19
        p.record_slice(3000, 1_000_000);
        assert_eq!(p.slices(), 2);
        assert_eq!(p.total_events(), 4000);
        // 4000 events in 2 ms = 2M events/sec.
        assert!((p.events_per_sec() - 2_000_000.0).abs() < 1e-6);
        let hist = p.hist_buckets();
        assert_eq!(hist.len(), 1);
        assert_eq!(hist[0].1, 2);
        assert_eq!(hist[0].0, 1 << 19);
    }

    #[test]
    fn extreme_slices_stay_in_range() {
        let mut p = LoopProfile::new();
        p.record_slice(1, 0); // clamps to bucket 0
        p.record_slice(1, u64::MAX); // clamps to the top bucket
        let hist = p.hist_buckets();
        assert_eq!(hist.len(), 2);
        assert_eq!(hist[0].0, 1);
        assert_eq!(hist[1].0, 1 << 63);
    }

    #[test]
    fn json_includes_dispatch_and_meter() {
        let mut p = LoopProfile::new();
        p.record_slice(500, 2_000_000);
        p.set_dispatch(&[("timer", 300u64), ("frame_start", 200)]);
        let j = p.to_json();
        assert!(j.contains("\"events\":500"), "{j}");
        assert!(j.contains("\"dispatch\":{\"timer\":300,\"frame_start\":200}"));
        assert!(j.contains("\"events_per_sec\":250000"));
        let text = p.render_text();
        assert!(text.contains("250000 events/sec"));
        assert!(text.contains("timer"));
    }

    #[test]
    fn pool_block_only_appears_when_attached() {
        let mut p = LoopProfile::new();
        p.record_slice(10, 1_000);
        assert!(!p.to_json().contains("\"pool\""));
        p.set_pool(4, 3, 12, 9_000);
        let j = p.to_json();
        assert!(
            j.contains("\"pool\":{\"jobs\":4,\"batches\":3,\"jobs_executed\":12,\"busy_ns\":9000}"),
            "{j}"
        );
        assert_eq!(p.pool(), Some((4, 3, 12, 9_000)));
    }
}
