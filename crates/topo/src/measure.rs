//! Link measurement and classification (§5.1).
//!
//! The authors measured per-link PRR and signal strength "shortly before
//! running the corresponding experiment" and classified links as *in range*
//! or *potential transmission links*. We compute the same quantities
//! analytically from the PHY model: PRR is the clean-channel packet success
//! probability averaged over the per-frame fading distribution — exactly
//! what an empirical packet count estimates, without the sampling noise.

use cmap_phy::{dbm_to_mw, error_model, preamble, Rate};

use crate::testbed::Testbed;

/// Radio environment assumed for measurement; mirrors the defaults of
/// `cmap_sim::PhyConfig` (kept separate so this crate stays below the
/// simulator in the dependency graph).
#[derive(Debug, Clone)]
pub struct RadioEnv {
    /// Transmit power in dBm.
    pub tx_power_dbm: f64,
    /// Noise floor in dBm.
    pub noise_floor_dbm: f64,
    /// Per-frame lognormal fading sigma in dB.
    pub fading_sigma_db: f64,
    /// Probability of an upfade burst (see `cmap_sim::PhyConfig`).
    pub fading_boost_prob: f64,
    /// Mean of the upfade component in dB.
    pub fading_boost_db: f64,
    /// Receiver sensitivity in dBm (below it, no preamble lock).
    pub sensitivity_dbm: f64,
}

impl Default for RadioEnv {
    fn default() -> RadioEnv {
        RadioEnv {
            tx_power_dbm: 15.0,
            noise_floor_dbm: cmap_phy::NOISE_FLOOR_DBM,
            fading_sigma_db: 2.0,
            fading_boost_prob: 0.08,
            fading_boost_db: 18.0,
            sensitivity_dbm: -95.0,
        }
    }
}

/// Probability that a clean (interference-free) frame of `psdu_bytes` at
/// `rate` is received over a link with the given mean RSS, averaged over
/// lognormal fading.
pub fn clean_prr(rss_dbm: f64, rate: Rate, psdu_bytes: usize, env: &RadioEnv) -> f64 {
    let noise = dbm_to_mw(env.noise_floor_dbm);
    if env.fading_sigma_db <= 0.0 {
        return clean_prr_at(rss_dbm, noise, rate, psdu_bytes, env);
    }
    let base = gaussian_average(rss_dbm, env.fading_sigma_db, |rss| {
        clean_prr_at(rss, noise, rate, psdu_bytes, env)
    });
    if env.fading_boost_prob <= 0.0 {
        return base;
    }
    let boosted = gaussian_average(rss_dbm + env.fading_boost_db, env.fading_sigma_db, |rss| {
        clean_prr_at(rss, noise, rate, psdu_bytes, env)
    });
    (1.0 - env.fading_boost_prob) * base + env.fading_boost_prob * boosted
}

/// 33-point quadrature of `f` over a +/- 4 sigma Gaussian around `mean`.
fn gaussian_average(mean: f64, sigma: f64, f: impl Fn(f64) -> f64) -> f64 {
    const POINTS: usize = 33;
    let (mut num, mut den) = (0.0, 0.0);
    for i in 0..POINTS {
        let z = -4.0 + 8.0 * i as f64 / (POINTS - 1) as f64;
        let w = (-0.5 * z * z).exp();
        num += w * f(mean + z * sigma);
        den += w;
    }
    num / den
}

fn clean_prr_at(rss_dbm: f64, noise_mw: f64, rate: Rate, psdu_bytes: usize, env: &RadioEnv) -> f64 {
    if rss_dbm < env.sensitivity_dbm {
        return 0.0;
    }
    let snr = dbm_to_mw(rss_dbm) / noise_mw;
    preamble::preamble_success_prob(snr) * error_model::packet_success_prob(snr, rate, psdu_bytes)
}

/// §5.1 connectivity bands over pairs with any connectivity.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ConnectivityStats {
    /// Directed pairs with PRR above the "any connectivity" floor.
    pub connected_pairs: usize,
    /// Of those: fraction with PRR < 0.1.
    pub frac_weak: f64,
    /// Of those: fraction with 0.1 <= PRR < ~1.
    pub frac_intermediate: f64,
    /// Of those: fraction with PRR ~= 1.
    pub frac_perfect: f64,
    /// Mean node degree counting links with PRR >= 0.1 in both directions.
    pub mean_degree: f64,
    /// Median node degree on the same definition.
    pub median_degree: f64,
}

/// Per-link measurements for a whole testbed, plus the network-wide signal
/// strength percentiles that the §5.1 link predicates reference.
#[derive(Debug, Clone)]
pub struct LinkMeasurements {
    n: usize,
    rate: Rate,
    payload: usize,
    prr: Vec<f64>,
    rss_dbm: Vec<f64>,
    /// 10th / 90th percentile of RSS over connected directed links.
    sig_p10: f64,
    sig_p90: f64,
}

/// PRR below which a directed pair counts as having no connectivity at all.
pub const ANY_CONNECTIVITY_PRR: f64 = 1e-5;

/// PRR at or above which a link counts as "PRR of 1" (a 100-packet
/// measurement would round it to 1).
pub const PERFECT_PRR: f64 = 0.995;

impl LinkMeasurements {
    /// Measure every directed link of `tb` at `rate` with `payload`-byte
    /// packets (the paper uses 6 Mbit/s and 1400 bytes for classification).
    pub fn analyze(tb: &Testbed, env: &RadioEnv, rate: Rate, payload: usize) -> LinkMeasurements {
        let n = tb.len();
        let mut prr = vec![0.0; n * n];
        let mut rss = vec![f64::NEG_INFINITY; n * n];
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let r = env.tx_power_dbm + tb.gain_db(a, b);
                rss[a * n + b] = r;
                prr[a * n + b] = clean_prr(r, rate, payload, env);
            }
        }
        let connected_rss: Vec<f64> = (0..n * n)
            .filter(|&i| prr[i] >= ANY_CONNECTIVITY_PRR)
            .map(|i| rss[i])
            .collect();
        let (sig_p10, sig_p90) = if connected_rss.is_empty() {
            (f64::NEG_INFINITY, f64::NEG_INFINITY)
        } else {
            (
                cmap_stats_percentile(&connected_rss, 10.0),
                cmap_stats_percentile(&connected_rss, 90.0),
            )
        };
        LinkMeasurements {
            n,
            rate,
            payload,
            prr,
            rss_dbm: rss,
            sig_p10,
            sig_p90,
        }
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.n
    }

    /// True if the measurement covers no nodes.
    pub fn is_empty(&self) -> bool {
        self.n == 0
    }

    /// Rate the measurement was taken at.
    pub fn rate(&self) -> Rate {
        self.rate
    }

    /// Payload size used for the PRR measurement.
    pub fn payload(&self) -> usize {
        self.payload
    }

    /// Directed PRR from `a` to `b`.
    pub fn prr(&self, a: usize, b: usize) -> f64 {
        self.prr[a * self.n + b]
    }

    /// Directed RSS in dBm from `a` to `b`.
    pub fn rss_dbm(&self, a: usize, b: usize) -> f64 {
        self.rss_dbm[a * self.n + b]
    }

    /// Network-wide 10th percentile of connected-link RSS.
    pub fn signal_p10(&self) -> f64 {
        self.sig_p10
    }

    /// Network-wide 90th percentile of connected-link RSS.
    pub fn signal_p90(&self) -> f64 {
        self.sig_p90
    }

    /// §5.1 "in range": both directions have PRR above 0.2 and signal above
    /// the network-wide 10th percentile.
    pub fn in_range(&self, a: usize, b: usize) -> bool {
        self.prr(a, b) > 0.2
            && self.prr(b, a) > 0.2
            && self.rss_dbm(a, b) >= self.sig_p10
            && self.rss_dbm(b, a) >= self.sig_p10
    }

    /// §5.1 "potential transmission link" `a -> b`: both directions have
    /// PRR above 0.9 and signal above the 10th percentile.
    pub fn potential_link(&self, a: usize, b: usize) -> bool {
        self.prr(a, b) > 0.9
            && self.prr(b, a) > 0.9
            && self.rss_dbm(a, b) >= self.sig_p10
            && self.rss_dbm(b, a) >= self.sig_p10
    }

    /// §5.2 "strong signal": directed RSS in the top decile network-wide.
    pub fn strong(&self, a: usize, b: usize) -> bool {
        self.rss_dbm(a, b) >= self.sig_p90
    }

    /// §5.2 "weak signal": directed RSS below the 90th percentile.
    pub fn weak(&self, a: usize, b: usize) -> bool {
        self.rss_dbm(a, b) < self.sig_p90
    }

    /// Compute the §5.1 connectivity bands and degrees.
    pub fn connectivity(&self) -> ConnectivityStats {
        let n = self.n;
        let mut connected = 0usize;
        let (mut weak, mut mid, mut perfect) = (0usize, 0usize, 0usize);
        for a in 0..n {
            for b in 0..n {
                if a == b {
                    continue;
                }
                let p = self.prr(a, b);
                if p < ANY_CONNECTIVITY_PRR {
                    continue;
                }
                connected += 1;
                if p < 0.1 {
                    weak += 1;
                } else if p < PERFECT_PRR {
                    mid += 1;
                } else {
                    perfect += 1;
                }
            }
        }
        let mut degrees: Vec<f64> = Vec::with_capacity(n);
        for a in 0..n {
            let deg = (0..n)
                .filter(|&b| b != a && self.prr(a, b) >= 0.1 && self.prr(b, a) >= 0.1)
                .count();
            degrees.push(deg as f64);
        }
        let c = connected.max(1) as f64;
        ConnectivityStats {
            connected_pairs: connected,
            frac_weak: weak as f64 / c,
            frac_intermediate: mid as f64 / c,
            frac_perfect: perfect as f64 / c,
            mean_degree: degrees.iter().sum::<f64>() / n as f64,
            median_degree: cmap_stats_percentile(&degrees, 50.0),
        }
    }
}

/// Local percentile (interpolated) to avoid a dependency on `cmap-stats`.
fn cmap_stats_percentile(xs: &[f64], p: f64) -> f64 {
    assert!(!xs.is_empty());
    let mut v = xs.to_vec();
    v.sort_by(f64::total_cmp);
    let rank = p / 100.0 * (v.len() - 1) as f64;
    let (lo, hi) = (rank.floor() as usize, rank.ceil() as usize);
    if lo == hi {
        v[lo]
    } else {
        v[lo] * (1.0 - (rank - lo as f64)) + v[hi] * (rank - lo as f64)
    }
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;
    use crate::testbed::TestbedParams;

    #[test]
    fn clean_prr_is_monotone_in_rss() {
        let env = RadioEnv::default();
        // With the upfade mixture, a -100 dBm link keeps trace connectivity;
        // that is the §5.1 weak-band behaviour the mixture exists for.
        assert!(clean_prr(-100.0, Rate::R6, 1400, &env) > 0.001);
        assert!(clean_prr(-100.0, Rate::R6, 1400, &env) < 0.1);
        let env = RadioEnv {
            fading_boost_prob: 0.0,
            ..RadioEnv::default()
        };
        let mut last = 0.0;
        for rss in (-100..-80).map(f64::from) {
            let p = clean_prr(rss, Rate::R6, 1400, &env);
            assert!(p >= last - 1e-9, "not monotone at {rss}");
            last = p;
        }
        assert!(clean_prr(-80.0, Rate::R6, 1400, &env) > 0.999);
        assert!(clean_prr(-100.0, Rate::R6, 1400, &env) < 0.05);
    }

    #[test]
    fn fading_smooths_the_cliff() {
        // Without fading the PER curve is a cliff; with fading there is a
        // genuine intermediate region.
        let sharp = RadioEnv {
            fading_sigma_db: 0.0,
            ..RadioEnv::default()
        };
        let soft = RadioEnv::default();
        let mut sharp_mid = 0;
        let mut soft_mid = 0;
        for tenth in -940..-880 {
            let rss = f64::from(tenth) / 10.0;
            let ps = clean_prr(rss, Rate::R6, 1400, &sharp);
            let pf = clean_prr(rss, Rate::R6, 1400, &soft);
            if (0.1..0.9).contains(&ps) {
                sharp_mid += 1;
            }
            if (0.1..0.9).contains(&pf) {
                soft_mid += 1;
            }
        }
        assert!(soft_mid > sharp_mid, "{soft_mid} vs {sharp_mid}");
    }

    #[test]
    fn connectivity_matches_paper_bands() {
        // The default testbed parameters must land in the neighbourhood of
        // the §5.1 population: 68% weak / 12% intermediate / 20% perfect,
        // mean degree 15.2, median 17. Averaged over several seeds with
        // generous tolerances — this pins calibration, not luck.
        let env = RadioEnv::default();
        let mut weak = 0.0;
        let mut mid = 0.0;
        let mut perfect = 0.0;
        let mut mean_deg = 0.0;
        let seeds = [1u64, 2, 3, 4, 5];
        for &s in &seeds {
            let tb = Testbed::generate(TestbedParams::default(), s);
            let lm = LinkMeasurements::analyze(&tb, &env, Rate::R6, 1400);
            let c = lm.connectivity();
            weak += c.frac_weak;
            mid += c.frac_intermediate;
            perfect += c.frac_perfect;
            mean_deg += c.mean_degree;
        }
        let k = seeds.len() as f64;
        let (weak, mid, perfect, mean_deg) = (weak / k, mid / k, perfect / k, mean_deg / k);
        assert!((0.45..0.70).contains(&weak), "weak {weak}");
        assert!((0.10..0.30).contains(&mid), "intermediate {mid}");
        assert!((0.12..0.35).contains(&perfect), "perfect {perfect}");
        assert!((12.0..19.0).contains(&mean_deg), "mean degree {mean_deg}");
    }

    #[test]
    fn predicates_are_consistent() {
        let tb = Testbed::office_floor(7);
        let lm = LinkMeasurements::analyze(&tb, &RadioEnv::default(), Rate::R6, 1400);
        let mut potential = 0;
        for a in 0..tb.len() {
            for b in 0..tb.len() {
                if a == b {
                    continue;
                }
                // A potential transmission link is necessarily in range.
                if lm.potential_link(a, b) {
                    potential += 1;
                    assert!(lm.in_range(a, b), "{a}->{b}");
                }
                assert_eq!(lm.weak(a, b), !lm.strong(a, b));
            }
        }
        assert!(potential > 20, "need usable links, got {potential}");
    }

    #[test]
    fn higher_rate_has_fewer_usable_links() {
        let tb = Testbed::office_floor(8);
        let env = RadioEnv::default();
        let count = |rate| {
            let lm = LinkMeasurements::analyze(&tb, &env, rate, 1400);
            (0..tb.len())
                .flat_map(|a| (0..tb.len()).map(move |b| (a, b)))
                .filter(|&(a, b)| a != b && lm.potential_link(a, b))
                .count()
        };
        let at6 = count(Rate::R6);
        let at18 = count(Rate::R18);
        let at54 = count(Rate::R54);
        assert!(at6 >= at18 && at18 >= at54, "{at6} {at18} {at54}");
        assert!(at54 < at6);
    }
}
