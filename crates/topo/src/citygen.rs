//! City-scale deployment generators: parametric node layouts far beyond
//! the 50-node office floor.
//!
//! [`Testbed`](crate::Testbed) freezes an O(N²) gain matrix at generation
//! time, which stops being a sane representation somewhere around a few
//! thousand nodes (a 10k-node matrix is 800 MB of `f64`). City-scale
//! deployments therefore hand out *positions plus a channel model
//! function* instead: the sparse medium evaluates the model only for
//! pairs inside its interference range, and everything outside folds into
//! the accumulated-error bound.
//!
//! Determinism contract: every gain drawn by [`ChannelModel`] is a pure
//! function of `(salt, min(a, b), max(a, b), distance)` — no generator
//! RNG state leaks into the channel, so gains are stable under node
//! reordering of the evaluation and identical whichever engine asks.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cmap_phy::propagation;

/// Distance-plus-shadowing channel for generated deployments.
///
/// The median loss is log-distance path loss with a fixed offset; on top
/// of that each unordered pair gets a frozen lognormal shadowing draw
/// derived by hashing `(salt, min, max)` — symmetric by construction and
/// reproducible without storing per-link state.
#[derive(Debug, Clone, Copy, PartialEq)]
pub struct ChannelModel {
    /// Path-loss exponent (urban outdoor runs 2.7–4).
    pub path_loss_exponent: f64,
    /// Fixed extra loss in dB on every link (antennas, enclosures).
    pub fixed_loss_db: f64,
    /// Standard deviation of the symmetric lognormal shadowing, dB.
    pub shadow_sigma_db: f64,
    /// Hash salt; two models with different salts draw independent
    /// shadowing fields over the same positions.
    pub salt: u64,
}

impl Default for ChannelModel {
    fn default() -> ChannelModel {
        ChannelModel {
            path_loss_exponent: 3.0,
            fixed_loss_db: 5.0,
            shadow_sigma_db: 4.0,
            salt: 0,
        }
    }
}

/// splitmix64 step — the standard finalizer used for hash-derived draws.
fn splitmix64(mut x: u64) -> u64 {
    x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    x = (x ^ (x >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    x = (x ^ (x >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    x ^ (x >> 31)
}

/// Map a u64 to the open unit interval (never exactly 0 or 1, so it is
/// safe under `ln`).
fn unit_open(x: u64) -> f64 {
    (x >> 11) as f64 * (1.0 / 9_007_199_254_740_992.0) + f64::MIN_POSITIVE
}

impl ChannelModel {
    /// Directed link gain in dB for nodes `a -> b` at `distance_m`.
    ///
    /// Symmetric in `(a, b)`: the shadowing hash keys on the unordered
    /// pair. Self-links are silent (`-inf`).
    pub fn link_gain_db(&self, a: usize, b: usize, distance_m: f64) -> f64 {
        if a == b {
            return f64::NEG_INFINITY;
        }
        let median =
            propagation::path_loss_db(distance_m, self.path_loss_exponent) + self.fixed_loss_db;
        let (lo, hi) = if a < b { (a, b) } else { (b, a) };
        let h1 =
            splitmix64(self.salt ^ (lo as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15) ^ hi as u64);
        let h2 = splitmix64(h1);
        // Box–Muller over two hash-derived uniforms: a frozen standard
        // normal per unordered pair.
        let u1 = unit_open(h1);
        let u2 = unit_open(h2);
        let z = (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos();
        -(median + z * self.shadow_sigma_db)
    }

    /// Distance at which the *median* gain falls to `min_gain_db` — the
    /// natural evaluation radius for a sparse medium over this model.
    /// Shadowing can push individual links past the median, so callers
    /// should add margin (3 sigma covers 99.9% of draws).
    pub fn range_for_gain_db(&self, min_gain_db: f64) -> f64 {
        // Invert median: -min_gain = ref_loss + 10·n·log10(d) + fixed.
        let budget = -min_gain_db - propagation::reference_loss_db() - self.fixed_loss_db;
        if budget <= 0.0 {
            return propagation::REF_DISTANCE_M;
        }
        propagation::REF_DISTANCE_M * 10f64.powf(budget / (10.0 * self.path_loss_exponent))
    }

    /// Evaluation radius covering every link whose gain can reach
    /// `min_gain_db` even with a `3 sigma` shadowing boost: the distance
    /// where the median is `3 sigma` *below* the target.
    pub fn eval_range_m(&self, min_gain_db: f64) -> f64 {
        self.range_for_gain_db(min_gain_db - 3.0 * self.shadow_sigma_db)
    }

    /// Gain bound for pairs beyond [`eval_range_m`]: the median there is
    /// `min_gain_db - 3 sigma`, so with the same `3 sigma` boost no
    /// excluded link exceeds `min_gain_db`. Feed this as `tail_gain_db`
    /// so the sparse medium's error bound stays an upper bound.
    pub fn tail_gain_db(&self, min_gain_db: f64) -> f64 {
        min_gain_db
    }
}

/// A generated city-scale deployment: positions plus the channel model
/// that prices its links on demand.
#[derive(Debug, Clone)]
pub struct Deployment {
    /// Node positions in metres.
    pub positions: Vec<(f64, f64)>,
    /// The channel model all link gains derive from.
    pub channel: ChannelModel,
    /// The seed the layout was generated from.
    pub seed: u64,
}

impl Deployment {
    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.positions.len()
    }

    /// True when the deployment has no nodes.
    pub fn is_empty(&self) -> bool {
        self.positions.is_empty()
    }

    /// The channel model as a pair-indexed gain function over these
    /// positions, in the shape sparse-medium construction consumes.
    pub fn gain_fn(&self) -> impl Fn(usize, usize, f64) -> f64 + '_ {
        let ch = self.channel;
        move |a, b, d| ch.link_gain_db(a, b, d)
    }
}

/// Manhattan-style grid city: nodes on a jittered street grid.
///
/// Nodes sit near the intersections of a `cols x rows` grid with
/// `block_m` spacing, each displaced by a uniform jitter of up to
/// `jitter_m` in both axes. `n` caps the population (row-major order).
pub fn grid_city(
    n: usize,
    block_m: f64,
    jitter_m: f64,
    channel: ChannelModel,
    seed: u64,
) -> Deployment {
    assert!(n > 0, "grid_city: need at least one node");
    assert!(block_m > 0.0, "grid_city: block size must be positive");
    let side = (n as f64).sqrt().ceil() as usize;
    let mut rng = SmallRng::seed_from_u64(seed ^ 0x6c1d_c17e_0000_0001);
    let mut positions = Vec::with_capacity(n);
    'outer: for row in 0..side {
        for col in 0..side {
            if positions.len() == n {
                break 'outer;
            }
            let jx = rng.gen_range(-jitter_m..=jitter_m);
            let jy = rng.gen_range(-jitter_m..=jitter_m);
            positions.push((col as f64 * block_m + jx, row as f64 * block_m + jy));
        }
    }
    Deployment {
        positions,
        channel,
        seed,
    }
}

/// Clustered deployment: `clusters` hotspot centres scattered over a
/// `width_m x depth_m` area, nodes Gaussian-scattered around a uniformly
/// chosen centre with standard deviation `spread_m`.
pub fn clustered(
    n: usize,
    clusters: usize,
    width_m: f64,
    depth_m: f64,
    spread_m: f64,
    channel: ChannelModel,
    seed: u64,
) -> Deployment {
    assert!(n > 0 && clusters > 0, "clustered: need nodes and clusters");
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xc105_7e2e_0000_0002);
    let centres: Vec<(f64, f64)> = (0..clusters)
        .map(|_| (rng.gen_range(0.0..width_m), rng.gen_range(0.0..depth_m)))
        .collect();
    let mut positions = Vec::with_capacity(n);
    for _ in 0..n {
        let (cx, cy) = centres[rng.gen_range(0..clusters)];
        let x = (cx + gaussian(&mut rng) * spread_m).clamp(0.0, width_m);
        let y = (cy + gaussian(&mut rng) * spread_m).clamp(0.0, depth_m);
        positions.push((x, y));
    }
    Deployment {
        positions,
        channel,
        seed,
    }
}

/// Poisson-disk-style deployment: uniform scatter over
/// `width_m x depth_m` with a minimum pairwise separation, via dart
/// throwing against an occupancy grid (O(N) per dart, fine for 100k).
pub fn poisson_disk(
    n: usize,
    width_m: f64,
    depth_m: f64,
    min_separation_m: f64,
    channel: ChannelModel,
    seed: u64,
) -> Deployment {
    assert!(n > 0, "poisson_disk: need at least one node");
    assert!(
        min_separation_m >= 0.0,
        "poisson_disk: separation must be nonnegative"
    );
    // Capacity sanity: densest packing of r-separated points is ~area/r².
    if min_separation_m > 0.0 {
        let capacity = (width_m / min_separation_m + 1.0) * (depth_m / min_separation_m + 1.0);
        assert!(
            (n as f64) < 0.6 * capacity,
            "poisson_disk: {n} nodes cannot fit {width_m}x{depth_m} m at {min_separation_m} m separation"
        );
    }
    let mut rng = SmallRng::seed_from_u64(seed ^ 0xd15c_0000_0000_0003);
    let cell = if min_separation_m > 0.0 {
        min_separation_m / std::f64::consts::SQRT_2
    } else {
        1.0
    };
    let cols = (width_m / cell).ceil() as usize + 1;
    let rows = (depth_m / cell).ceil() as usize + 1;
    // One point fits per cell of side r/sqrt(2); neighbors within 2 cells
    // cover every conflicting candidate.
    let mut occupancy: Vec<Option<(f64, f64)>> = vec![None; cols * rows];
    let mut positions = Vec::with_capacity(n);
    let mut attempts = 0usize;
    while positions.len() < n {
        attempts += 1;
        assert!(
            attempts < 200 * n + 100_000,
            "poisson_disk: giving up after {attempts} darts at {} of {n} placed",
            positions.len()
        );
        let p = (rng.gen_range(0.0..width_m), rng.gen_range(0.0..depth_m));
        let (cx, cy) = ((p.0 / cell) as usize, (p.1 / cell) as usize);
        let mut ok = true;
        if min_separation_m > 0.0 {
            'scan: for gy in cy.saturating_sub(2)..=(cy + 2).min(rows - 1) {
                for gx in cx.saturating_sub(2)..=(cx + 2).min(cols - 1) {
                    if let Some(q) = occupancy[gy * cols + gx] {
                        let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
                        if d2 < min_separation_m * min_separation_m {
                            ok = false;
                            break 'scan;
                        }
                    }
                }
            }
        }
        if ok {
            occupancy[cy * cols + cx] = Some(p);
            positions.push(p);
        }
    }
    Deployment {
        positions,
        channel,
        seed,
    }
}

/// Standard normal draw (Box–Muller; mirrors `testbed.rs`).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
// Tests assert exact IEEE equality where determinism itself is the
// property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn channel_is_symmetric_and_deterministic() {
        let ch = ChannelModel::default();
        for (a, b, d) in [(0usize, 1usize, 10.0), (7, 3, 55.5), (100, 4242, 240.0)] {
            assert_eq!(ch.link_gain_db(a, b, d), ch.link_gain_db(b, a, d));
            assert_eq!(ch.link_gain_db(a, b, d), ch.link_gain_db(a, b, d));
        }
        assert_eq!(ch.link_gain_db(5, 5, 0.0), f64::NEG_INFINITY);
        let salted = ChannelModel {
            salt: 99,
            ..ChannelModel::default()
        };
        assert_ne!(ch.link_gain_db(0, 1, 10.0), salted.link_gain_db(0, 1, 10.0));
    }

    #[test]
    fn range_inverts_median_path_loss() {
        let ch = ChannelModel {
            shadow_sigma_db: 0.0,
            ..ChannelModel::default()
        };
        let r = ch.range_for_gain_db(-100.0);
        let back = -(propagation::path_loss_db(r, ch.path_loss_exponent) + ch.fixed_loss_db);
        assert!((back - -100.0).abs() < 1e-9, "{back}");
        // eval_range adds shadowing margin: with sigma 0 they coincide.
        assert_eq!(ch.eval_range_m(-100.0), r);
        let shadowed = ChannelModel::default();
        assert!(shadowed.eval_range_m(-100.0) > shadowed.range_for_gain_db(-100.0));
    }

    #[test]
    fn grid_city_shape_and_determinism() {
        let d = grid_city(100, 50.0, 5.0, ChannelModel::default(), 7);
        assert_eq!(d.len(), 100);
        let d2 = grid_city(100, 50.0, 5.0, ChannelModel::default(), 7);
        assert_eq!(d.positions, d2.positions);
        // 10x10 grid at 50 m blocks with 5 m jitter spans ~[-5, 455].
        for &(x, y) in &d.positions {
            assert!((-5.0..=455.0).contains(&x) && (-5.0..=455.0).contains(&y));
        }
    }

    #[test]
    fn clustered_stays_in_bounds() {
        let d = clustered(500, 8, 1000.0, 600.0, 30.0, ChannelModel::default(), 11);
        assert_eq!(d.len(), 500);
        for &(x, y) in &d.positions {
            assert!((0.0..=1000.0).contains(&x) && (0.0..=600.0).contains(&y));
        }
    }

    #[test]
    fn poisson_disk_respects_separation() {
        let d = poisson_disk(300, 400.0, 400.0, 12.0, ChannelModel::default(), 5);
        assert_eq!(d.len(), 300);
        for a in 0..d.len() {
            for b in (a + 1)..d.len() {
                let (ax, ay) = d.positions[a];
                let (bx, by) = d.positions[b];
                let dist = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                assert!(dist >= 12.0 - 1e-9, "{a},{b} at {dist}");
            }
        }
    }

    #[test]
    fn gain_fn_matches_channel() {
        let d = grid_city(16, 40.0, 0.0, ChannelModel::default(), 1);
        let f = d.gain_fn();
        assert_eq!(f(0, 5, 33.0), d.channel.link_gain_db(0, 5, 33.0));
    }
}
