//! Experiment topology selection: the constraints of Fig 11 and §5.6.
//!
//! Each evaluation experiment picks sender/receiver sets from the testbed
//! subject to PRR and signal-strength constraints measured beforehand. The
//! selectors here enumerate every candidate configuration satisfying the
//! figure's constraints and sample the requested number uniformly (without
//! replacement) from a caller-supplied RNG, mirroring "chosen at random from
//! all possible configurations" (§5.2).

use rand::rngs::SmallRng;
use rand::seq::SliceRandom;
use rand::Rng;

use crate::measure::LinkMeasurements;
use crate::testbed::Testbed;

/// Two sender→receiver links evaluated concurrently.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct LinkPair {
    /// First sender.
    pub s1: usize,
    /// First receiver.
    pub r1: usize,
    /// Second sender.
    pub s2: usize,
    /// Second receiver.
    pub r2: usize,
}

impl LinkPair {
    fn nodes(&self) -> [usize; 4] {
        [self.s1, self.r1, self.s2, self.r2]
    }
}

/// A sender→receiver link plus an interferer (§5.4, Fig 14).
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct InterfererTriple {
    /// The measured link's sender.
    pub s: usize,
    /// The measured link's receiver.
    pub r: usize,
    /// The interfering node, transmitting continuously.
    pub i: usize,
}

/// A two-hop content-dissemination tree (§5.7, Fig 11(d)): `source`
/// transmits a batch to each relay `a[k]`, which forwards to leaf `b[k]`.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct MeshTopology {
    /// The content source S.
    pub source: usize,
    /// First-hop relays A1..Ak.
    pub relays: Vec<usize>,
    /// Second-hop leaves B1..Bk.
    pub leaves: Vec<usize>,
}

/// One access-point experiment instance (§5.6): `links[k]` is the
/// (sender, receiver) pair in cell `k`; one endpoint of each is the AP.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ApTopology {
    /// The access points, one per selected region.
    pub aps: Vec<usize>,
    /// The active link in each cell: (sender, receiver).
    pub links: Vec<(usize, usize)>,
}

fn all_distinct(nodes: &[usize]) -> bool {
    nodes
        .iter()
        .enumerate()
        .all(|(i, &a)| nodes[..i].iter().all(|&b| b != a))
}

/// Directed links that are potential transmission links.
fn potential_links(lm: &LinkMeasurements) -> Vec<(usize, usize)> {
    let n = lm.len();
    let mut v = Vec::new();
    for a in 0..n {
        for b in 0..n {
            if a != b && lm.potential_link(a, b) {
                v.push((a, b));
            }
        }
    }
    v
}

/// Fig 11(a): exposed-terminal pairs. Senders in range of each other, each
/// link a potential transmission link with strong (top-decile) signal, and
/// every other pairing among the four nodes weak.
pub fn exposed_pairs(lm: &LinkMeasurements, count: usize, rng: &mut SmallRng) -> Vec<LinkPair> {
    let strong_links: Vec<(usize, usize)> = potential_links(lm)
        .into_iter()
        .filter(|&(s, r)| lm.strong(s, r))
        .collect();
    let mut candidates = Vec::new();
    for &(s1, r1) in &strong_links {
        for &(s2, r2) in &strong_links {
            let pair = LinkPair { s1, r1, s2, r2 };
            if s1 >= s2 || !all_distinct(&pair.nodes()) {
                continue;
            }
            if !lm.in_range(s1, s2) {
                continue;
            }
            // All non-link pairings weak in both directions.
            let others = [(s1, r2), (s2, r1), (r1, r2), (s1, s2)];
            if others.iter().all(|&(a, b)| lm.weak(a, b) && lm.weak(b, a)) {
                candidates.push(pair);
            }
        }
    }
    candidates.shuffle(rng);
    candidates.truncate(count);
    candidates
}

/// Fig 11(b): two senders in range of each other, both links potential
/// transmission links, signal strengths otherwise unconstrained.
pub fn in_range_pairs(lm: &LinkMeasurements, count: usize, rng: &mut SmallRng) -> Vec<LinkPair> {
    let links = potential_links(lm);
    let mut candidates = Vec::new();
    for &(s1, r1) in &links {
        for &(s2, r2) in &links {
            let pair = LinkPair { s1, r1, s2, r2 };
            if s1 >= s2 || !all_distinct(&pair.nodes()) {
                continue;
            }
            if lm.in_range(s1, s2) {
                candidates.push(pair);
            }
        }
    }
    candidates.shuffle(rng);
    candidates.truncate(count);
    candidates
}

/// Fig 11(c): hidden-terminal pairs. Each receiver has a potential
/// transmission link to *both* senders (so the transmissions almost always
/// collide at the receivers) while the senders are out of range of each
/// other (so they cannot defer).
pub fn hidden_pairs(lm: &LinkMeasurements, count: usize, rng: &mut SmallRng) -> Vec<LinkPair> {
    let links = potential_links(lm);
    let mut candidates = Vec::new();
    for &(s1, r1) in &links {
        for &(s2, r2) in &links {
            let pair = LinkPair { s1, r1, s2, r2 };
            if s1 >= s2 || !all_distinct(&pair.nodes()) {
                continue;
            }
            if lm.in_range(s1, s2) {
                continue; // must be hidden from each other
            }
            if lm.potential_link(s2, r1) && lm.potential_link(s1, r2) {
                candidates.push(pair);
            }
        }
    }
    candidates.shuffle(rng);
    candidates.truncate(count);
    candidates
}

/// §5.4: potential transmission links paired with a uniformly random
/// interferer node.
pub fn interferer_triples(
    lm: &LinkMeasurements,
    count: usize,
    rng: &mut SmallRng,
) -> Vec<InterfererTriple> {
    let links = potential_links(lm);
    assert!(!links.is_empty(), "no potential links in testbed");
    let n = lm.len();
    let mut out = Vec::with_capacity(count);
    for _ in 0..count {
        let &(s, r) = links.choose(rng).expect("non-empty");
        let i = loop {
            let i = rng.gen_range(0..n);
            if i != s && i != r {
                break i;
            }
        };
        out.push(InterfererTriple { s, r, i });
    }
    out
}

/// §5.7, Fig 11(d): two-hop dissemination trees with `fanout` branches.
/// `S → Ai` and `Ai → Bi` are potential transmission links; the leaves are
/// genuinely two hops out (no potential link from the source).
pub fn mesh_topologies(
    lm: &LinkMeasurements,
    fanout: usize,
    count: usize,
    rng: &mut SmallRng,
) -> Vec<MeshTopology> {
    let n = lm.len();
    let mut out = Vec::new();
    let mut attempts = 0;
    while out.len() < count && attempts < count * 400 {
        attempts += 1;
        let source = rng.gen_range(0..n);
        let relay_candidates: Vec<usize> = (0..n)
            .filter(|&a| a != source && lm.potential_link(source, a))
            .collect();
        if relay_candidates.len() < fanout {
            continue;
        }
        let mut relays = relay_candidates;
        relays.shuffle(rng);
        relays.truncate(fanout);
        let mut used: Vec<usize> = vec![source];
        used.extend_from_slice(&relays);
        let mut leaves = Vec::with_capacity(fanout);
        let mut ok = true;
        for &a in &relays {
            let leaf_candidates: Vec<usize> = (0..n)
                .filter(|&b| {
                    !used.contains(&b) && lm.potential_link(a, b) && !lm.potential_link(source, b)
                })
                .collect();
            match leaf_candidates.choose(rng) {
                Some(&b) => {
                    leaves.push(b);
                    used.push(b);
                }
                None => {
                    ok = false;
                    break;
                }
            }
        }
        if ok {
            out.push(MeshTopology {
                source,
                relays,
                leaves,
            });
        }
    }
    out
}

/// Assign each node to one of six floor regions (3 columns × 2 rows).
pub fn regions(tb: &Testbed) -> Vec<usize> {
    tb.positions
        .iter()
        .map(|&(x, y)| {
            let col = ((x / tb.params.width_m * 3.0) as usize).min(2);
            let row = ((y / tb.params.depth_m * 2.0) as usize).min(1);
            row * 3 + col
        })
        .collect()
}

/// Walk order over the six regions such that consecutive entries are
/// spatially adjacent (a Hamiltonian path on the 3×2 grid).
const REGION_PATH: [usize; 6] = [0, 1, 2, 5, 4, 3];

/// §5.6: build one AP experiment with `n_aps` access points in adjacent
/// regions, each with one randomly chosen client and a random transfer
/// direction. APs are mutually out of range. Returns `None` if the testbed
/// draw cannot satisfy the constraints (caller retries with another seed).
pub fn ap_topology(
    tb: &Testbed,
    lm: &LinkMeasurements,
    n_aps: usize,
    rng: &mut SmallRng,
) -> Option<ApTopology> {
    assert!((1..=6).contains(&n_aps));
    let region_of = regions(tb);
    let start = rng.gen_range(0..REGION_PATH.len());
    'window: for w in 0..REGION_PATH.len() {
        let window: Vec<usize> = (0..n_aps)
            .map(|k| REGION_PATH[(start + w + k) % REGION_PATH.len()])
            .collect();
        for _try in 0..60 {
            let mut aps = Vec::with_capacity(n_aps);
            let mut links = Vec::with_capacity(n_aps);
            let mut ok = true;
            for &region in &window {
                let members: Vec<usize> =
                    (0..tb.len()).filter(|&v| region_of[v] == region).collect();
                // Candidate APs: region members with at least one potential
                // client in the same region, out of range of chosen APs.
                let candidates: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&ap| {
                        aps.iter().all(|&other| !lm.in_range(ap, other))
                            && members.iter().any(|&c| c != ap && lm.potential_link(ap, c))
                    })
                    .collect();
                let Some(&ap) = candidates.choose(rng) else {
                    ok = false;
                    break;
                };
                let clients: Vec<usize> = members
                    .iter()
                    .copied()
                    .filter(|&c| c != ap && lm.potential_link(ap, c))
                    .collect();
                let &client = clients.choose(rng).expect("candidate AP has a client");
                let link = if rng.gen_bool(0.5) {
                    (ap, client)
                } else {
                    (client, ap)
                };
                aps.push(ap);
                links.push(link);
            }
            if ok {
                return Some(ApTopology { aps, links });
            }
            if aps.is_empty() {
                // This window has an impossible region; try the next window.
                continue 'window;
            }
        }
    }
    None
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::measure::RadioEnv;
    use cmap_phy::Rate;
    use rand::SeedableRng;

    fn setup() -> (Testbed, LinkMeasurements) {
        let tb = Testbed::office_floor(42);
        let lm = LinkMeasurements::analyze(&tb, &RadioEnv::default(), Rate::R6, 1400);
        (tb, lm)
    }

    #[test]
    fn exposed_pairs_satisfy_constraints() {
        let (_tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(1);
        let pairs = exposed_pairs(&lm, 20, &mut rng);
        assert!(!pairs.is_empty(), "no exposed pairs found");
        for p in &pairs {
            assert!(lm.in_range(p.s1, p.s2));
            assert!(lm.potential_link(p.s1, p.r1) && lm.potential_link(p.s2, p.r2));
            assert!(lm.strong(p.s1, p.r1) && lm.strong(p.s2, p.r2));
            assert!(lm.weak(p.s1, p.r2) && lm.weak(p.s2, p.r1));
            assert!(lm.weak(p.r1, p.r2) && lm.weak(p.r2, p.r1));
        }
    }

    #[test]
    fn in_range_pairs_satisfy_constraints() {
        let (_tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(2);
        let pairs = in_range_pairs(&lm, 50, &mut rng);
        assert!(pairs.len() >= 20, "{}", pairs.len());
        for p in &pairs {
            assert!(lm.in_range(p.s1, p.s2));
            assert!(lm.potential_link(p.s1, p.r1) && lm.potential_link(p.s2, p.r2));
        }
    }

    #[test]
    fn hidden_pairs_satisfy_constraints() {
        let (_tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(3);
        let pairs = hidden_pairs(&lm, 50, &mut rng);
        assert!(!pairs.is_empty(), "no hidden pairs found");
        for p in &pairs {
            assert!(!lm.in_range(p.s1, p.s2), "senders must be hidden");
            assert!(lm.potential_link(p.s1, p.r1) && lm.potential_link(p.s2, p.r2));
            assert!(lm.potential_link(p.s1, p.r2) && lm.potential_link(p.s2, p.r1));
        }
    }

    #[test]
    fn triples_are_valid_and_plentiful() {
        let (_tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(4);
        let triples = interferer_triples(&lm, 500, &mut rng);
        assert_eq!(triples.len(), 500);
        for t in &triples {
            assert!(lm.potential_link(t.s, t.r));
            assert!(t.i != t.s && t.i != t.r);
        }
    }

    #[test]
    fn mesh_trees_are_two_hop() {
        let (_tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(5);
        let meshes = mesh_topologies(&lm, 3, 10, &mut rng);
        assert!(!meshes.is_empty(), "no mesh topologies found");
        for m in &meshes {
            assert_eq!(m.relays.len(), 3);
            assert_eq!(m.leaves.len(), 3);
            let mut all = vec![m.source];
            all.extend(&m.relays);
            all.extend(&m.leaves);
            assert!(all_distinct(&all));
            for (k, &a) in m.relays.iter().enumerate() {
                assert!(lm.potential_link(m.source, a));
                assert!(lm.potential_link(a, m.leaves[k]));
                assert!(!lm.potential_link(m.source, m.leaves[k]));
            }
        }
    }

    #[test]
    fn regions_partition_the_floor() {
        let (tb, _lm) = setup();
        let r = regions(&tb);
        assert_eq!(r.len(), tb.len());
        assert!(r.iter().all(|&x| x < 6));
        // All six regions populated on the default floor.
        for region in 0..6 {
            assert!(r.contains(&region), "region {region} empty");
        }
    }

    #[test]
    fn ap_topologies_satisfy_constraints() {
        let (tb, lm) = setup();
        let mut rng = SmallRng::seed_from_u64(6);
        for n_aps in 3..=6 {
            let topo = ap_topology(&tb, &lm, n_aps, &mut rng)
                .unwrap_or_else(|| panic!("no AP topology with {n_aps} APs"));
            assert_eq!(topo.aps.len(), n_aps);
            assert_eq!(topo.links.len(), n_aps);
            for (k, &(s, r)) in topo.links.iter().enumerate() {
                let ap = topo.aps[k];
                assert!(s == ap || r == ap, "link must touch its AP");
                assert!(lm.potential_link(s, r));
            }
            for i in 0..n_aps {
                for j in (i + 1)..n_aps {
                    assert!(!lm.in_range(topo.aps[i], topo.aps[j]));
                }
            }
        }
    }
}
