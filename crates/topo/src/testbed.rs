//! Testbed generation: node placement and frozen link gains.
//!
//! Nodes are scattered over a rectangular office floor with a minimum
//! separation (no two testbed boxes share a desk). Each *directed* link gain
//! is median log-distance path loss plus lognormal shadowing, where the
//! shadowing has a symmetric per-pair component and a smaller per-direction
//! component — producing the asymmetric links §3.1 warns about.

use rand::rngs::SmallRng;
use rand::{Rng, SeedableRng};

use cmap_phy::propagation;

/// Parameters of a generated testbed.
#[derive(Debug, Clone)]
pub struct TestbedParams {
    /// Number of nodes.
    pub nodes: usize,
    /// Floor width in metres.
    pub width_m: f64,
    /// Floor depth in metres.
    pub depth_m: f64,
    /// Minimum node separation in metres.
    pub min_separation_m: f64,
    /// Path-loss exponent. Office floors with interior walls run well above
    /// free space; this is the main knob that sets how far links reach.
    pub path_loss_exponent: f64,
    /// Extra fixed loss in dB applied to every link (walls, antennas,
    /// enclosure) — the second calibration knob for the §5.1 link bands.
    pub fixed_loss_db: f64,
    /// Standard deviation of the symmetric (per-pair) lognormal shadowing.
    pub shadowing_sigma_db: f64,
    /// Standard deviation of the per-direction shadowing component.
    pub asymmetry_sigma_db: f64,
    /// Attenuation per interior wall in dB (multi-wall model). Walls are
    /// drawn per pair as `Poisson(distance / wall_every_m)`: this heavy
    /// right tail of extra loss is what produces the large population of
    /// barely-connected links the paper reports (68% of connected pairs
    /// with PRR < 0.1) — plain lognormal shadowing cannot.
    pub wall_attenuation_db: f64,
    /// Mean distance between wall crossings in metres.
    pub wall_every_m: f64,
}

impl Default for TestbedParams {
    /// Calibrated so the generated link population lands in the §5.1 bands
    /// (see `connectivity_matches_paper_bands` in `measure.rs` and the
    /// `testbed_stats` bench binary).
    fn default() -> TestbedParams {
        TestbedParams {
            nodes: 50,
            width_m: 70.0,
            depth_m: 40.0,
            min_separation_m: 4.0,
            path_loss_exponent: 4.0,
            fixed_loss_db: 5.0,
            shadowing_sigma_db: 3.5,
            asymmetry_sigma_db: 1.5,
            wall_attenuation_db: 2.0,
            wall_every_m: 8.0,
        }
    }
}

/// A generated testbed: positions plus the frozen directed gain matrix.
#[derive(Debug, Clone)]
pub struct Testbed {
    /// Generation parameters.
    pub params: TestbedParams,
    /// Node positions in metres.
    pub positions: Vec<(f64, f64)>,
    /// Directed link gains in dB (negative; `[tx * n + rx]`, diagonal
    /// `-inf`).
    pub gains_db: Vec<f64>,
    /// Propagation delays in ns, same layout.
    pub delay_ns: Vec<u64>,
}

impl Testbed {
    /// Generate a testbed with the given parameters and seed.
    pub fn generate(params: TestbedParams, seed: u64) -> Testbed {
        let mut rng = SmallRng::seed_from_u64(seed ^ 0x7e57_bed0_0000_0000);
        let positions = place_nodes(&params, &mut rng);
        let n = params.nodes;
        let mut gains_db = vec![f64::NEG_INFINITY; n * n];
        let mut delay_ns = vec![0u64; n * n];
        for a in 0..n {
            for b in (a + 1)..n {
                let (ax, ay) = positions[a];
                let (bx, by) = positions[b];
                let d = ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt();
                let walls = if params.wall_attenuation_db > 0.0 && params.wall_every_m > 0.0 {
                    f64::from(poisson(&mut rng, d / params.wall_every_m).min(10))
                } else {
                    0.0
                };
                let median_loss = propagation::path_loss_db(d, params.path_loss_exponent)
                    + params.fixed_loss_db
                    + walls * params.wall_attenuation_db;
                let sym = gaussian(&mut rng) * params.shadowing_sigma_db;
                let asym_ab = gaussian(&mut rng) * params.asymmetry_sigma_db;
                let asym_ba = gaussian(&mut rng) * params.asymmetry_sigma_db;
                gains_db[a * n + b] = -(median_loss + sym + asym_ab);
                gains_db[b * n + a] = -(median_loss + sym + asym_ba);
                let delay = propagation::propagation_delay_ns(d);
                delay_ns[a * n + b] = delay;
                delay_ns[b * n + a] = delay;
            }
        }
        Testbed {
            params,
            positions,
            gains_db,
            delay_ns,
        }
    }

    /// The default 50-node office floor with the given seed.
    pub fn office_floor(seed: u64) -> Testbed {
        Testbed::generate(TestbedParams::default(), seed)
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.params.nodes
    }

    /// True when the testbed has no nodes (never, for generated testbeds).
    pub fn is_empty(&self) -> bool {
        self.params.nodes == 0
    }

    /// Directed gain in dB from `a` to `b`.
    pub fn gain_db(&self, a: usize, b: usize) -> f64 {
        self.gains_db[a * self.len() + b]
    }

    /// Euclidean distance between two nodes in metres.
    pub fn distance_m(&self, a: usize, b: usize) -> f64 {
        let (ax, ay) = self.positions[a];
        let (bx, by) = self.positions[b];
        ((ax - bx).powi(2) + (ay - by).powi(2)).sqrt()
    }
}

/// Rejection-sample positions with minimum separation.
fn place_nodes(params: &TestbedParams, rng: &mut SmallRng) -> Vec<(f64, f64)> {
    let mut positions: Vec<(f64, f64)> = Vec::with_capacity(params.nodes);
    let mut attempts = 0usize;
    while positions.len() < params.nodes {
        attempts += 1;
        assert!(
            attempts < 100_000,
            "cannot place {} nodes with {} m separation on {}x{} m",
            params.nodes,
            params.min_separation_m,
            params.width_m,
            params.depth_m
        );
        let p = (
            rng.gen_range(0.0..params.width_m),
            rng.gen_range(0.0..params.depth_m),
        );
        let ok = positions.iter().all(|q| {
            let d2 = (p.0 - q.0).powi(2) + (p.1 - q.1).powi(2);
            d2 >= params.min_separation_m * params.min_separation_m
        });
        if ok {
            positions.push(p);
        }
    }
    positions
}

/// Poisson draw via inversion (small means only).
fn poisson(rng: &mut SmallRng, lambda: f64) -> u32 {
    let l = (-lambda).exp();
    let mut k = 0u32;
    let mut p = 1.0;
    loop {
        p *= rng.gen_range(0.0..1.0f64);
        if p <= l || k >= 50 {
            return k;
        }
        k += 1;
    }
}

/// Standard normal draw (Box–Muller; local copy to keep this crate free of a
/// `cmap-sim` dependency).
fn gaussian(rng: &mut SmallRng) -> f64 {
    let u1: f64 = rng.gen_range(f64::MIN_POSITIVE..1.0);
    let u2: f64 = rng.gen_range(0.0..1.0);
    (-2.0 * u1.ln()).sqrt() * (2.0 * std::f64::consts::PI * u2).cos()
}

#[cfg(test)]
// Tests assert exact IEEE boundary semantics (0.0, 1.0, infinities),
// where bit-exact equality is the property under test.
#[allow(clippy::float_cmp)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let a = Testbed::office_floor(3);
        let b = Testbed::office_floor(3);
        assert_eq!(a.positions, b.positions);
        assert_eq!(a.gains_db, b.gains_db);
        let c = Testbed::office_floor(4);
        assert_ne!(a.positions, c.positions);
    }

    #[test]
    fn separation_respected() {
        let tb = Testbed::office_floor(1);
        for a in 0..tb.len() {
            for b in (a + 1)..tb.len() {
                assert!(
                    tb.distance_m(a, b) >= tb.params.min_separation_m - 1e-9,
                    "{a},{b} too close"
                );
            }
        }
    }

    #[test]
    fn gains_mostly_symmetric_but_not_exactly() {
        let tb = Testbed::office_floor(2);
        let mut asym_total = 0.0;
        let mut count = 0;
        for a in 0..tb.len() {
            for b in (a + 1)..tb.len() {
                let diff = (tb.gain_db(a, b) - tb.gain_db(b, a)).abs();
                assert!(diff < 15.0, "wildly asymmetric: {diff}");
                asym_total += diff;
                count += 1;
            }
        }
        let mean_asym = asym_total / f64::from(count);
        // Per-direction sigma 1.5 dB -> mean |diff| ~ 1.7 dB.
        assert!((0.5..4.0).contains(&mean_asym), "{mean_asym}");
    }

    #[test]
    fn diagonal_is_silent() {
        let tb = Testbed::office_floor(5);
        for a in 0..tb.len() {
            assert_eq!(tb.gain_db(a, a), f64::NEG_INFINITY);
        }
    }

    #[test]
    fn closer_nodes_have_stronger_links_on_average() {
        let tb = Testbed::office_floor(6);
        let (mut near, mut far) = (Vec::new(), Vec::new());
        for a in 0..tb.len() {
            for b in 0..tb.len() {
                if a == b {
                    continue;
                }
                let d = tb.distance_m(a, b);
                if d < 15.0 {
                    near.push(tb.gain_db(a, b));
                } else if d > 40.0 {
                    far.push(tb.gain_db(a, b));
                }
            }
        }
        let avg = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
        assert!(avg(&near) > avg(&far) + 10.0);
    }
}
