//! # cmap-topo — testbed topologies for the CMAP reproduction
//!
//! The paper evaluates CMAP on a 50-node indoor 802.11a testbed spanning one
//! office floor (Fig 10), characterised in §5.1 by a highly irregular link
//! population: of the node pairs with any connectivity, ~68% have packet
//! reception rate (PRR) below 0.1, ~12% are intermediate, and ~20% are
//! perfect, with a mean degree of ~15 over the usable links.
//!
//! This crate generates statistically similar topologies: nodes placed on a
//! floor plan, link gains from log-distance path loss plus frozen lognormal
//! shadowing (with a small asymmetric component, since the paper calls out
//! asymmetric links), and the measurement/classification machinery of §5.1:
//!
//! * [`measure::LinkMeasurements`] — analytic per-link PRR and RSS, exactly
//!   the quantities the authors measured "shortly before running the
//!   corresponding experiment",
//! * link predicates: *in range* (PRR > 0.2 both ways, signal above the 10th
//!   percentile) and *potential transmission link* (PRR > 0.9 both ways),
//! * [`select`] — the topology constraints of Fig 11 (exposed-terminal
//!   pairs, in-range sender pairs, hidden-terminal pairs, interferer
//!   triples, mesh trees) and the region/AP partition of §5.6.

pub mod citygen;
pub mod measure;
pub mod select;
pub mod testbed;

pub use citygen::{clustered, grid_city, poisson_disk, ChannelModel, Deployment};
pub use measure::{ConnectivityStats, LinkMeasurements, RadioEnv};
pub use select::{ApTopology, InterfererTriple, LinkPair, MeshTopology};
pub use testbed::{Testbed, TestbedParams};
