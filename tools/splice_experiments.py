#!/usr/bin/env python3
"""Splice a repro_all report into EXPERIMENTS.md between the GENERATED markers.

Usage: python3 tools/splice_experiments.py [report] [experiments]
Defaults: repro_report.md, EXPERIMENTS.md
"""
import sys

report_path = sys.argv[1] if len(sys.argv) > 1 else "repro_report.md"
target_path = sys.argv[2] if len(sys.argv) > 2 else "EXPERIMENTS.md"

report = open(report_path).read().strip()
target = open(target_path).read()

begin = "<!-- BEGIN GENERATED RESULTS -->"
end = "<!-- END GENERATED RESULTS -->"
pre, rest = target.split(begin, 1)
_, post = rest.split(end, 1)
open(target_path, "w").write(pre + begin + "\n" + report + "\n" + end + post)
print(f"spliced {len(report)} bytes of results into {target_path}")
