//! Determinism under fault injection, at testbed scale: installing a fault
//! plan must not break the byte-identical-snapshot guarantee, and the
//! invariant watchdog must stay silent while faults fire.
//!
//! This is the integration-level counterpart of the sim-layer fault tests:
//! the full CMAP stack on a generated office testbed, with churn and a
//! bursty channel layered on top.

use cmap_suite::experiments::{runner, Protocol, Spec};
use cmap_suite::sim::rng::stream_rng;
use cmap_suite::sim::time::secs;
use cmap_suite::sim::FaultPlan;
use cmap_suite::topo::select;

fn run_faulted(spec: &Spec, run_seed: u64, plan: &FaultPlan) -> (String, u64) {
    let ctx = runner::testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    let pair = pairs.first().expect("an exposed-terminal pair exists");

    let mut world = runner::build_world(&ctx, run_seed);
    world.add_flow(pair.s1, pair.r1, spec.payload);
    world.add_flow(pair.s2, pair.r2, spec.payload);
    Protocol::cmap().install(&mut world);
    world.install_faults(plan.clone());
    world.run_until(spec.duration);
    (world.stats().snapshot(), world.watchdog_violations())
}

fn spec() -> Spec {
    Spec {
        duration: secs(5),
        configs: 4,
        ..Spec::default()
    }
}

#[test]
fn same_seed_fault_runs_are_byte_identical() {
    let spec = spec();
    for (name, plan) in FaultPlan::canonical(50, spec.duration) {
        let (a, va) = run_faulted(&spec, 21, &plan);
        let (b, vb) = run_faulted(&spec, 21, &plan);
        assert_eq!(va, 0, "[{name}] watchdog violations in first run");
        assert_eq!(vb, 0, "[{name}] watchdog violations in second run");
        assert_eq!(a, b, "[{name}] same-seed fault runs diverged");
    }
}

#[test]
fn fault_plan_actually_perturbs_the_run() {
    let spec = spec();
    let plan = FaultPlan::mixed(50, spec.duration);
    let (clean, _) = run_faulted(&spec, 21, &FaultPlan::clean());
    let (faulted, viol) = run_faulted(&spec, 21, &plan);
    assert_eq!(viol, 0, "watchdog violations under mixed plan");
    assert_ne!(clean, faulted, "fault plan had no observable effect");
}

#[test]
fn different_seeds_differ_under_the_same_plan() {
    let spec = spec();
    let plan = FaultPlan::churn_heavy(50, spec.duration);
    let (a, _) = run_faulted(&spec, 21, &plan);
    let (b, _) = run_faulted(&spec, 22, &plan);
    assert_ne!(a, b, "run seed had no effect under faults");
}
