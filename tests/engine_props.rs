//! Property-based tests for the simulation engine's foundations.

use proptest::prelude::*;

use cmap_suite::sim::event::{Event, Scheduler};
use cmap_suite::sim::rng::{derive_seed, normal, stream_rng};
use cmap_suite::sim::time::bits_duration;
use cmap_suite::sim::NodeId;

proptest! {
    /// Events pop in (time, insertion) order no matter the insert order.
    #[test]
    fn scheduler_is_a_stable_priority_queue(times in proptest::collection::vec(0u64..1_000_000, 1..300)) {
        let mut s = Scheduler::new();
        for (i, &t) in times.iter().enumerate() {
            s.schedule(t, Event::Timer { node: NodeId::new(0), token: i as u64 });
        }
        let mut last: Option<(u64, u64)> = None;
        let mut popped = 0;
        while let Some((t, ev)) = s.pop() {
            let Event::Timer { token, .. } = ev else { unreachable!() };
            prop_assert_eq!(t, times[token as usize]);
            if let Some((lt, ltok)) = last {
                prop_assert!(t > lt || (t == lt && token > ltok),
                    "order violated: ({lt},{ltok}) then ({t},{token})");
            }
            last = Some((t, token));
            popped += 1;
        }
        prop_assert_eq!(popped, times.len());
    }

    /// The timing wheel is pop-order-equivalent to the reference binary
    /// heap it replaced, under random interleavings of schedules and pops
    /// — including schedules *earlier* than events already popped (the
    /// scheduler API has no cancellation: events only ever leave via
    /// `pop`, so an interleaved drain is the complete workload space).
    #[test]
    fn wheel_matches_reference_heap(
        ops in proptest::collection::vec(
            // (how many to pop first, batch of times to schedule)
            (0usize..6, proptest::collection::vec(0u64..u64::MAX / 2, 0..12)),
            1..40,
        ),
    ) {
        use std::cmp::Reverse;
        use std::collections::BinaryHeap;

        let mut wheel = Scheduler::new();
        // Reference model: exactly the (time, seq) min-heap the engine
        // used before the wheel.
        let mut heap: BinaryHeap<Reverse<(u64, u64)>> = BinaryHeap::new();
        let mut seq = 0u64;
        let check_pop = |wheel: &mut Scheduler,
                             heap: &mut BinaryHeap<Reverse<(u64, u64)>>|
         -> Result<(), TestCaseError> {
            let expect = heap.pop().map(|Reverse(ts)| ts);
            prop_assert_eq!(wheel.peek_time(), expect.map(|(t, _)| t));
            let got = wheel.pop().map(|(t, ev)| {
                let Event::Timer { token, .. } = ev else { unreachable!() };
                (t, token)
            });
            prop_assert_eq!(got, expect);
            Ok(())
        };
        for (pops, times) in &ops {
            for &t in times {
                wheel.schedule(t, Event::Timer { node: NodeId::new(0), token: seq });
                heap.push(Reverse((t, seq)));
                seq += 1;
            }
            for _ in 0..*pops {
                check_pop(&mut wheel, &mut heap)?;
            }
            prop_assert_eq!(wheel.len(), heap.len());
        }
        while !wheel.is_empty() {
            check_pop(&mut wheel, &mut heap)?;
        }
        prop_assert!(heap.is_empty());
        prop_assert_eq!(wheel.processed(), seq);
    }

    /// Seed derivation: deterministic, and distinct streams disagree.
    #[test]
    fn seed_streams_are_deterministic(master in any::<u64>(), stream in 0u64..1000) {
        prop_assert_eq!(derive_seed(master, stream), derive_seed(master, stream));
        use rand::Rng;
        let mut a = stream_rng(master, stream);
        let mut b = stream_rng(master, stream);
        for _ in 0..8 {
            prop_assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    /// Airtime helper: monotone in bits, inversely related to rate, and
    /// never rounds below the exact value.
    #[test]
    fn bits_duration_bounds(bits in 1u64..10_000_000, bps in 1_000_000u64..100_000_000) {
        let d = bits_duration(bits, bps);
        let exact = bits as f64 * 1e9 / bps as f64;
        prop_assert!(d as f64 >= exact - 1e-6);
        prop_assert!((d as f64) < exact + 1.0);
        prop_assert!(bits_duration(bits + 1, bps) >= d);
    }

    /// Box–Muller output is finite and symmetric-ish around the mean.
    #[test]
    fn normal_draws_are_finite(seed in any::<u64>(), mean in -100.0f64..100.0, sigma in 0.0f64..20.0) {
        let mut rng = stream_rng(seed, 0);
        for _ in 0..16 {
            let x = normal(&mut rng, mean, sigma);
            prop_assert!(x.is_finite());
            if sigma <= 0.0 {
                // Degenerate sigma returns the mean *exactly* (bitwise) —
                // that identity is the property under test.
                prop_assert!(x.to_bits() == mean.to_bits());
            } else {
                prop_assert!((x - mean).abs() < 10.0 * sigma);
            }
        }
    }
}
