//! Determinism under parallelism: the worker-pool executor must be
//! invisible in every artifact. The same figure run at `--jobs 1` and
//! `--jobs 4` has to produce bit-identical samples, byte-identical JSON
//! reports (outside the timing block) and byte-identical stats snapshots —
//! the pool may only change wall-clock, never bytes.

use cmap_suite::exec::Pool;
use cmap_suite::experiments::exposed::fig12;
use cmap_suite::experiments::Spec;
use cmap_suite::obs::{SpecBlock, TimingBlock};
use cmap_suite::prelude::*;
use cmap_suite::sim::time::secs;

/// Fig 12 at a small quick-scale spec, at the given pool width.
fn fig12_at(jobs: usize) -> Vec<cmap_suite::experiments::exposed::Curve> {
    let spec = Spec {
        duration: secs(6),
        configs: 4,
        jobs,
        ..Spec::default()
    };
    fig12(&spec)
}

#[test]
fn figure_samples_are_bit_identical_across_widths() {
    let serial = fig12_at(1);
    let wide = fig12_at(4);
    assert_eq!(serial.len(), wide.len());
    for (a, b) in serial.iter().zip(wide.iter()) {
        assert_eq!(a.label, b.label);
        assert_eq!(a.samples.len(), b.samples.len());
        for (i, (x, y)) in a.samples.iter().zip(b.samples.iter()).enumerate() {
            assert_eq!(
                x.to_bits(),
                y.to_bits(),
                "curve {} sample {i} diverged across pool widths: {x} vs {y}",
                a.label
            );
        }
    }
}

/// Build the figure's RunReport the way a harness binary would.
fn report_at(jobs: usize, wall_secs: f64) -> RunReport {
    let curves = fig12_at(jobs);
    let spec = SpecBlock {
        testbed_seed: 42,
        run_seed: 42,
        effort: "quick".to_string(),
        configs: 4,
        duration_s: 6.0,
        payload: 1400,
    };
    // The spec block deliberately has no jobs field: pool width must never
    // reach report bytes.
    let mut r = RunReport::new("parallel_identity", "fig12 at a pool width", spec);
    for c in &curves {
        let mean = c.samples.iter().sum::<f64>() / c.samples.len() as f64;
        r.metric(&format!("mean_{}", c.label), mean);
    }
    r.timing = Some(TimingBlock { wall_secs });
    r
}

#[test]
fn figure_reports_are_byte_identical_across_widths() {
    // Different wall-clocks, as two real invocations would measure.
    let serial = report_at(1, 3.25);
    let wide = report_at(4, 1.125);
    assert_eq!(
        serial.to_json(false),
        wide.to_json(false),
        "pool width leaked into the deterministic report view"
    );
    // Only the timing block may differ in the full serialization.
    assert_ne!(serial.to_json(true), wide.to_json(true));
}

/// A small CMAP world per seed, returning the full stats snapshot.
fn snapshot_world(seed: u64) -> String {
    let phy = PhyConfig::default();
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    let mut set = |a: usize, b: usize, rss_dbm: f64| {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    };
    set(0, 1, -60.0);
    set(2, 3, -60.0);
    set(0, 2, -75.0);
    set(0, 3, -93.0);
    set(2, 1, -93.0);
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    let mut world = World::builder().medium(medium).phy(phy).seed(seed).build();
    world.add_flow(0, 1, 1400);
    world.add_flow(2, 3, 1400);
    for node in 0..n {
        world.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
    }
    world.run_until(secs(1));
    world.stats().snapshot()
}

#[test]
fn pooled_world_snapshots_match_serial_byte_for_byte() {
    let seeds: Vec<u64> = (100..110).collect();
    let serial = Pool::new(1).map(&seeds, |&s| snapshot_world(s));
    let pooled = Pool::new(4).map(&seeds, |&s| snapshot_world(s));
    assert_eq!(serial.len(), pooled.len());
    for (i, (a, b)) in serial.iter().zip(pooled.iter()).enumerate() {
        assert!(!a.is_empty());
        assert_eq!(a, b, "seed {} snapshot diverged under the pool", seeds[i]);
    }
    // Distinct seeds must still differ — the pool isn't collapsing runs.
    assert_ne!(serial[0], serial[1]);
}
