//! Property-based tests of the windowed ACK/retransmission bookkeeping:
//! no packet is ever lost by the *sender-side* state machinery — everything
//! ends up either acknowledged or queued for retransmission.

use proptest::prelude::*;

use cmap_suite::cmap::vpkt::{DataPkt, PeerRx, SendWindow, SentVpkt};
use cmap_suite::phy::Rate;
use cmap_suite::wire::MacAddr;

fn pkt(flow_seq: u32) -> DataPkt {
    DataPkt {
        flow: 0,
        flow_seq,
        payload_len: 1400,
    }
}

proptest! {
    /// Fill a window with vpkts, apply arbitrary ACK bitmaps, then repack:
    /// acked + requeued == sent, with no duplicates.
    #[test]
    fn conservation_of_packets(
        sizes in proptest::collection::vec(1usize..=32, 1..=8),
        acks in proptest::collection::vec((any::<u32>(), any::<u32>()), 0..16),
    ) {
        let dst = MacAddr::from_node_index(1);
        let mut w = SendWindow::new();
        let mut next_flow_seq = 0u32;
        let mut all_sent = Vec::new();
        for pkts in &sizes {
            let seq = w.alloc_seq(dst);
            let data: Vec<DataPkt> = (0..*pkts).map(|_| {
                let p = pkt(next_flow_seq);
                next_flow_seq += 1;
                p
            }).collect();
            all_sent.extend(data.iter().map(|p| p.flow_seq));
            w.push_sent(SentVpkt { dst, seq, pkts: data, acked: 0, sent_at: 0, rate: Rate::R6, rounds: 0 });
        }

        let mut acked_total = 0usize;
        for (base_raw, bm) in acks {
            let base = base_raw % (sizes.len() as u32 + 2);
            acked_total += w.on_ack(dst, base, &[bm, bm.rotate_left(7), bm ^ 0xFFFF]);
        }
        let (requeued, gave_up) = w.repack_for_rtx(32, u32::MAX);
        prop_assert_eq!(gave_up, 0, "fresh vpkts never give up");
        prop_assert_eq!(acked_total + requeued, all_sent.len());
        prop_assert_eq!(w.outstanding(), 0);

        // Every requeued packet is one of the originals, no duplicates.
        let mut seen = std::collections::HashSet::new();
        while let Some((d, pkts, rounds)) = w.pop_rtx() {
            prop_assert_eq!(d, dst);
            prop_assert_eq!(rounds, 1);
            for p in pkts {
                prop_assert!(seen.insert(p.flow_seq), "duplicate {}", p.flow_seq);
                prop_assert!(all_sent.contains(&p.flow_seq));
            }
        }
        prop_assert_eq!(seen.len(), requeued);
    }

    /// Receiver-side ACK construction never reports more received packets
    /// than expected, and the loss rate is a valid fraction.
    #[test]
    fn receiver_loss_rate_is_sane(
        events in proptest::collection::vec((0u32..20, 0u8..32, any::<bool>()), 1..200),
    ) {
        let mut rx = PeerRx::new();
        let mut upto = 0;
        for (seq, idx, with_header) in events {
            if with_header {
                rx.on_header(seq, 32, 0);
            }
            rx.on_data(seq, idx);
            upto = upto.max(seq);
        }
        let (base, bitmaps, loss) = rx.build_ack(upto, 8, 32);
        prop_assert!(base <= upto);
        prop_assert!(!bitmaps.is_empty() && bitmaps.len() <= 8);
        prop_assert!((0.0..=1.0).contains(&loss), "loss {loss}");
    }

    /// ACKing twice never double-counts.
    #[test]
    fn idempotent_acks(bm in any::<u32>()) {
        let dst = MacAddr::from_node_index(1);
        let mut w = SendWindow::new();
        let seq = w.alloc_seq(dst);
        w.push_sent(SentVpkt {
            dst,
            seq,
            pkts: (0..32).map(pkt).collect(),
            acked: 0,
            sent_at: 0,
            rate: Rate::R6,
            rounds: 0,
        });
        let first = w.on_ack(dst, 0, &[bm]);
        let second = w.on_ack(dst, 0, &[bm]);
        prop_assert_eq!(first, bm.count_ones() as usize);
        prop_assert_eq!(second, 0);
    }
}
