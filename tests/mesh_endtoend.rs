//! End-to-end two-hop relay correctness on the generated testbed: leaves
//! only receive what relays received, duplicates are suppressed, and CMAP
//! sustains the pipeline.

use cmap_suite::experiments::runner::{build_world, radio_env, Spec, TestbedCtx};
use cmap_suite::prelude::*;
use cmap_suite::topo::select;

#[test]
fn relay_pipeline_is_causal_and_lossless_at_the_stats_layer() {
    let spec = Spec {
        duration: time::secs(15),
        ..Spec::default()
    };
    let phy = PhyConfig::default();
    let tb = Testbed::office_floor(spec.testbed_seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&phy), Rate::R6, 1400);
    let ctx = TestbedCtx { tb, lm, phy };

    let mut rng = cmap_suite::sim::rng::stream_rng(1, 0x315);
    let topo = select::mesh_topologies(&ctx.lm, 3, 1, &mut rng)
        .pop()
        .expect("mesh topology");

    let mut world = build_world(&ctx, 99);
    let mut pairs = Vec::new();
    for (k, &a) in topo.relays.iter().enumerate() {
        let up = world.add_flow(topo.source, a, spec.payload);
        let down = world.add_relay_flow(a, topo.leaves[k], spec.payload, up);
        pairs.push((up, down));
    }
    for n in 0..world.node_count() {
        world.set_mac(n, Box::new(CmapMac::new(CmapConfig::default())));
    }
    world.run_until(spec.duration);

    let mut total_leaf = 0;
    for &(up, down) in &pairs {
        let up_count = world.stats().flow(up).arrivals.len();
        let down_count = world.stats().flow(down).arrivals.len();
        // Causality: a relay can only forward what it received.
        assert!(
            down_count <= up_count,
            "leaf got {down_count} > relay's {up_count}"
        );
        // The pipeline actually moves data.
        assert!(up_count > 200, "first hop starved: {up_count}");
        assert!(
            down_count * 3 > up_count,
            "second hop too lossy: {down_count} of {up_count}"
        );
        total_leaf += down_count;
    }
    assert!(total_leaf > 600, "aggregate leaf deliveries {total_leaf}");
}
