//! Determinism of the observability artifacts: the same seed must produce
//! byte-identical trace JSONL dumps and byte-identical run reports (the
//! `timing` block is excluded by construction — it is the only place
//! wall-clock-derived numbers may appear).

use cmap_suite::obs::{SpecBlock, TimingBlock};
use cmap_suite::prelude::*;
use cmap_suite::sim::time::secs;

/// The Fig 12 exposed-terminal configuration: two pairs whose senders hear
/// each other but whose receivers don't hear the other sender.
fn exposed_world(seed: u64) -> (World, u16, u16) {
    let phy = PhyConfig::default();
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    let mut set = |a: usize, b: usize, rss_dbm: f64| {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    };
    set(0, 1, -60.0);
    set(2, 3, -60.0);
    set(0, 2, -75.0);
    set(0, 3, -93.0);
    set(2, 1, -93.0);
    set(1, 3, -95.0);
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    let mut world = World::builder().medium(medium).phy(phy).seed(seed).build();
    let f1 = world.add_flow(0, 1, 1400);
    let f2 = world.add_flow(2, 3, 1400);
    for node in 0..n {
        world.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
    }
    (world, f1, f2)
}

/// One traced run: returns the JSONL trace dump and the stats snapshot.
fn traced_run(seed: u64) -> (String, String) {
    let (mut world, _f1, _f2) = exposed_world(seed);
    world.enable_trace(1 << 16);
    world.run_until(secs(2));
    let snapshot = world.stats().snapshot();
    let trace = world.take_trace().expect("trace was enabled");
    assert!(
        trace.emitted() > 0,
        "a saturated CMAP run must emit trace events"
    );
    (trace.to_jsonl(), snapshot)
}

#[test]
fn same_seed_traces_are_byte_identical() {
    let (jsonl_a, snap_a) = traced_run(11);
    let (jsonl_b, snap_b) = traced_run(11);
    assert!(!jsonl_a.is_empty());
    assert_eq!(snap_a, snap_b, "same-seed snapshots diverged");
    assert_eq!(jsonl_a, jsonl_b, "same-seed trace dumps diverged");
    // Every line is a self-contained JSON object with the fixed prefix.
    for line in jsonl_a.lines() {
        assert!(line.starts_with("{\"seq\":"), "{line}");
        assert!(line.ends_with('}'), "{line}");
        assert!(line.contains("\"ev\":"), "{line}");
    }
}

#[test]
fn different_seed_traces_differ() {
    let (jsonl_a, _) = traced_run(11);
    let (jsonl_b, _) = traced_run(12);
    assert_ne!(
        jsonl_a, jsonl_b,
        "different seeds produced identical traces"
    );
}

/// Build a RunReport from one run's counters, stamping a caller-supplied
/// wall-clock figure into the timing block (as the harness shell does).
fn report_from_run(seed: u64, wall_secs: f64) -> RunReport {
    let (mut world, f1, f2) = exposed_world(seed);
    world.run_until(secs(2));
    let spec = SpecBlock {
        testbed_seed: 0,
        run_seed: seed,
        effort: "quick".to_string(),
        configs: 1,
        duration_s: 2.0,
        payload: 1400,
    };
    let mut r = RunReport::new("trace_determinism", "exposed micro-topology", spec);
    let stats = world.stats();
    r.metric("tx_frames", stats.counter(CounterId::SimTx));
    r.metric("defers", stats.counter(CounterId::CmapDefer));
    r.metric(
        "pair1_mbps",
        stats.flow_throughput_mbps(f1, 1400, secs(1), secs(2)),
    );
    r.metric(
        "pair2_mbps",
        stats.flow_throughput_mbps(f2, 1400, secs(1), secs(2)),
    );
    r.timing = Some(TimingBlock { wall_secs });
    r
}

#[test]
fn same_seed_reports_are_byte_identical_outside_timing() {
    // Different wall-clock timings — as two real runs would measure.
    let a = report_from_run(11, 1.25);
    let b = report_from_run(11, 7.5);
    // The deterministic view is byte-identical...
    assert_eq!(a.to_json(false), b.to_json(false));
    assert!(!a.to_json(false).contains("timing"));
    // ...and only the timing block separates the full serializations.
    assert_ne!(a.to_json(true), b.to_json(true));
    assert!(a
        .to_json(true)
        .ends_with("\"timing\":{\"wall_secs\":1.25}}"));
}
