//! Byte-level determinism regression: two runs of the same exposed-terminal
//! scenario with the same seed must leave *identical* statistics — not just
//! matching summary numbers, but equal canonical serializations of every
//! arrival time, virtual-packet flag and counter (`Stats::snapshot`).
//!
//! This is the test the `cmap-lint` hash-iter/wall-clock rules exist to
//! protect: any hash-ordered iteration or ambient-state leak on the packet
//! path eventually shifts one timestamp, and the snapshots stop matching.

use cmap_suite::experiments::{runner, Protocol, Spec};
use cmap_suite::sim::rng::stream_rng;
use cmap_suite::sim::time::secs;
use cmap_suite::topo::select;

fn run_snapshot(spec: &Spec, run_seed: u64) -> String {
    let ctx = runner::testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    let pair = pairs.first().expect("an exposed-terminal pair exists");

    let mut world = runner::build_world(&ctx, run_seed);
    world.add_flow(pair.s1, pair.r1, spec.payload);
    world.add_flow(pair.s2, pair.r2, spec.payload);
    Protocol::cmap().install(&mut world);
    world.run_until(spec.duration);
    world.stats().snapshot()
}

#[test]
fn same_seed_runs_are_byte_identical() {
    let spec = Spec {
        duration: secs(5),
        configs: 4,
        ..Spec::default()
    };
    let a = run_snapshot(&spec, 11);
    let b = run_snapshot(&spec, 11);
    assert!(!a.is_empty(), "snapshot recorded nothing");
    assert!(
        a.contains("vpkt") && a.contains("counter"),
        "snapshot missing sections:\n{a}"
    );
    assert_eq!(a, b, "same-seed runs diverged");
}

#[test]
fn different_seeds_change_the_snapshot() {
    let spec = Spec {
        duration: secs(5),
        configs: 4,
        ..Spec::default()
    };
    let a = run_snapshot(&spec, 11);
    let b = run_snapshot(&spec, 12);
    assert_ne!(a, b, "run seed had no effect on the statistics");
}
