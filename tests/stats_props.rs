//! Property-based tests for the statistics toolkit.

use proptest::prelude::*;

use cmap_suite::stats::{mean, percentile, std_dev, Cdf, Summary};

fn finite_samples() -> impl Strategy<Value = Vec<f64>> {
    proptest::collection::vec(-1e6f64..1e6, 1..200)
}

proptest! {
    #[test]
    fn cdf_fractions_are_monotone_and_bounded(samples in finite_samples(), x in -2e6f64..2e6, y in -2e6f64..2e6) {
        let cdf = Cdf::new(samples);
        let (lo, hi) = if x <= y { (x, y) } else { (y, x) };
        let flo = cdf.fraction_at_or_below(lo);
        let fhi = cdf.fraction_at_or_below(hi);
        prop_assert!((0.0..=1.0).contains(&flo));
        prop_assert!((0.0..=1.0).contains(&fhi));
        prop_assert!(flo <= fhi);
        prop_assert!((cdf.fraction_above(lo) - (1.0 - flo)).abs() < 1e-12);
    }

    #[test]
    fn quantiles_are_monotone_and_within_range(samples in finite_samples(), q1 in 0.0f64..=1.0, q2 in 0.0f64..=1.0) {
        let cdf = Cdf::new(samples.clone());
        let (lo, hi) = if q1 <= q2 { (q1, q2) } else { (q2, q1) };
        let vlo = cdf.quantile(lo);
        let vhi = cdf.quantile(hi);
        prop_assert!(vlo <= vhi + 1e-9);
        let min = samples.iter().cloned().fold(f64::INFINITY, f64::min);
        let max = samples.iter().cloned().fold(f64::NEG_INFINITY, f64::max);
        prop_assert!(vlo >= min - 1e-9 && vhi <= max + 1e-9);
    }

    #[test]
    fn summary_orderings_hold(samples in finite_samples()) {
        let s = Summary::of(&samples);
        prop_assert!(s.min <= s.p10 + 1e-9);
        prop_assert!(s.p10 <= s.p25 + 1e-9);
        prop_assert!(s.p25 <= s.median + 1e-9);
        prop_assert!(s.median <= s.p75 + 1e-9);
        prop_assert!(s.p75 <= s.p90 + 1e-9);
        prop_assert!(s.p90 <= s.max + 1e-9);
        prop_assert!(s.min <= s.mean + 1e-9 && s.mean <= s.max + 1e-9);
        prop_assert!(s.std_dev >= 0.0);
    }

    #[test]
    fn mean_shift_invariance(samples in finite_samples(), shift in -1e3f64..1e3) {
        let shifted: Vec<f64> = samples.iter().map(|x| x + shift).collect();
        prop_assert!((mean(&shifted) - (mean(&samples) + shift)).abs() < 1e-6);
        // Standard deviation is shift-invariant.
        prop_assert!((std_dev(&shifted) - std_dev(&samples)).abs() < 1e-6);
    }

    #[test]
    fn percentile_of_constant_is_constant(c in -1e6f64..1e6, n in 1usize..50, p in 0.0f64..=100.0) {
        let samples = vec![c; n];
        // Interpolation between equal values may differ by an ULP.
        let got = percentile(&samples, p);
        prop_assert!((got - c).abs() <= c.abs() * 1e-12, "{got} vs {c}");
    }
}
