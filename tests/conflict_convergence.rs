//! End-to-end conflict-map convergence on an engineered topology: the
//! defer machinery must engage for conflicting pairs and stay out of the
//! way for exposed pairs.

use cmap_suite::prelude::*;

fn world_from_rss(rss: &[(usize, usize, f64)], seed: u64) -> World {
    let phy = PhyConfig::default();
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    for &(a, b, rss_dbm) in rss {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    }
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    World::builder().medium(medium).phy(phy).seed(seed).build()
}

fn cmap_world(rss: &[(usize, usize, f64)], seed: u64) -> World {
    let mut w = world_from_rss(rss, seed);
    w.add_flow(0, 1, 1400);
    w.add_flow(2, 3, 1400);
    for node in 0..4 {
        w.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
    }
    w
}

fn defer_entries(w: &World, node: usize) -> usize {
    w.mac_ref(node)
        .as_any()
        .downcast_ref::<CmapMac>()
        .unwrap()
        .defer_table()
        .len_at(w.now())
}

const CONFLICTING: &[(usize, usize, f64)] = &[
    (0, 1, -60.0),
    (1, 0, -60.0),
    (2, 3, -60.0),
    (3, 2, -60.0),
    (0, 2, -65.0),
    (2, 0, -65.0),
    (0, 3, -63.0),
    (3, 0, -63.0),
    (2, 1, -63.0),
    (1, 2, -63.0),
    (1, 3, -80.0),
    (3, 1, -80.0),
];

const EXPOSED: &[(usize, usize, f64)] = &[
    (0, 1, -60.0),
    (1, 0, -60.0),
    (2, 3, -60.0),
    (3, 2, -60.0),
    (0, 2, -75.0),
    (2, 0, -75.0),
    (0, 3, -93.0),
    (3, 0, -93.0),
    (2, 1, -93.0),
    (1, 2, -93.0),
    (1, 3, -95.0),
    (3, 1, -95.0),
];

#[test]
fn conflicting_pair_converges_within_seconds() {
    let mut w = cmap_world(CONFLICTING, 21);
    // Within a few broadcast periods both senders must hold defer entries.
    let mut converged_at = None;
    for sec in 1..=10u64 {
        w.run_until(time::secs(sec));
        if defer_entries(&w, 0) > 0 && defer_entries(&w, 2) > 0 {
            converged_at = Some(sec);
            break;
        }
    }
    let at = converged_at.expect("defer tables never populated");
    assert!(at <= 6, "convergence took {at}s");
    // And deferral must actually be happening.
    w.run_until(time::secs(12));
    assert!(w.stats().counter(CounterId::CmapDefer) > 10);
}

#[test]
fn exposed_pair_never_learns_false_conflicts() {
    let mut w = cmap_world(EXPOSED, 22);
    w.run_until(time::secs(12));
    // A handful of transient entries are tolerable; sustained deferral on
    // an exposed pair would throw away the concurrency gain.
    let defers = w.stats().counter(CounterId::CmapDefer);
    let vpkts = w.stats().counter(CounterId::CmapTxVpkt);
    assert!(
        defers * 5 < vpkts,
        "{defers} defers vs {vpkts} vpkts on an exposed pair"
    );
    // Both flows near full single-link rate.
    let t1 = w
        .stats()
        .flow_throughput_mbps(0, 1400, time::secs(4), time::secs(12));
    let t2 = w
        .stats()
        .flow_throughput_mbps(1, 1400, time::secs(4), time::secs(12));
    assert!(t1 + t2 > 9.0, "exposed aggregate {t1} + {t2}");
}

#[test]
fn defer_entries_expire_when_broadcasts_stop() {
    // Learn conflicts, then verify entries decay after their lifetime when
    // no refresh arrives (we stop time-advancing traffic by just letting
    // the expiry horizon pass: entries must not outlive defer_entry_timeout
    // without refresh).
    let mut w = cmap_world(CONFLICTING, 23);
    w.run_until(time::secs(10));
    let cfg = CmapConfig::default();
    let before = defer_entries(&w, 0) + defer_entries(&w, 2);
    assert!(before > 0, "nothing learned to expire");
    // Entries are refreshed continuously while traffic flows; the check
    // here is structural: every live entry's expiry is within the
    // configured lifetime from now.
    for node in [0usize, 2] {
        let mac = w.mac_ref(node).as_any().downcast_ref::<CmapMac>().unwrap();
        let now = w.now();
        let horizon = now + cfg.defer_entry_timeout;
        // All entries still live at `now` must be gone by `horizon` unless
        // refreshed — len_at(horizon) counts those that would survive
        // without refresh, which must be zero.
        assert_eq!(
            mac.defer_table().len_at(horizon),
            0,
            "node {node} has entries outliving their lifetime"
        );
    }
}
