//! Bit-determinism of the whole stack: the same spec produces identical
//! results, and different run seeds produce different (but plausible) ones.

use cmap_suite::experiments::{exposed, Spec};
use cmap_suite::sim::time::secs;

fn small_spec(run_seed: u64) -> Spec {
    Spec {
        duration: secs(6),
        configs: 2,
        run_seed,
        ..Spec::default()
    }
}

#[test]
fn identical_specs_are_bit_identical() {
    let a = exposed::fig12(&small_spec(7));
    let b = exposed::fig12(&small_spec(7));
    assert_eq!(a.len(), b.len());
    for (ca, cb) in a.iter().zip(&b) {
        assert_eq!(ca.label, cb.label);
        assert_eq!(ca.samples, cb.samples, "curve {} diverged", ca.label);
    }
}

#[test]
fn different_run_seeds_differ_but_agree_qualitatively() {
    let a = exposed::fig12(&small_spec(7));
    let b = exposed::fig12(&small_spec(8));
    // Same configurations and protocol line-up...
    assert_eq!(a.len(), b.len());
    // ...but the fading/backoff draws differ, so samples should not be
    // bit-identical across all curves.
    let identical = a.iter().zip(&b).all(|(ca, cb)| ca.samples == cb.samples);
    assert!(!identical, "different seeds produced identical runs");
    // Qualitative agreement: CMAP beats carrier sense under both seeds.
    for curves in [&a, &b] {
        let mean = |label: &str| {
            let c = curves.iter().find(|c| c.label == label).expect(label);
            c.samples.iter().sum::<f64>() / c.samples.len() as f64
        };
        assert!(mean("CMAP") > mean("CS, acks"));
    }
}
