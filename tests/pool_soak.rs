//! Frame-pool soak: sustained CMAP traffic with crash/restart churn, frame
//! corruption and duplication faults, and a checkpoint/restore taken with
//! frames in flight. The pool must neither leak (the high-water mark stays
//! bounded by the radio population — at most one transmission per node plus
//! propagation stragglers) nor double-free (debug assertions in the pool
//! fire on stale handles), and once every radio quiesces the live-slot
//! count must drain to exactly zero.

use cmap_suite::experiments::{runner, Protocol, Spec};
use cmap_suite::sim::faults::Outage;
use cmap_suite::sim::rng::stream_rng;
use cmap_suite::sim::time::{millis, secs};
use cmap_suite::sim::{FaultPlan, NodeId, World};
use cmap_suite::topo::select;

/// Churn + channel-fault plan ending with every node held down long enough
/// for all in-flight frame events to drain.
fn soak_plan(nodes: usize) -> FaultPlan {
    let mut plan = FaultPlan::clean();
    // Exercise the corrupted-frame (slot released, nothing dispatched) and
    // duplicated-frame (one slot graded twice) pool paths.
    plan.corrupt_prob = 0.05;
    plan.dup_frame_prob = 0.05;
    // Staggered mid-run crashes: restart churn recycles any slot the dead
    // node had in flight via the normal TxEnd/FrameEnd events.
    for (i, down_ms) in [(1usize, 800u64), (2, 1200), (3, 1600)] {
        plan.churn.push(Outage {
            node: NodeId::new(i),
            down_at: millis(down_ms),
            up_at: millis(down_ms + 300),
        });
    }
    // Quiesce: everyone down for the final stretch; transmissions already
    // on the air complete (and release their slots), nothing new starts.
    for node in 0..nodes {
        plan.churn.push(Outage {
            node: NodeId::new(node),
            down_at: secs(3),
            up_at: secs(10),
        });
    }
    plan
}

fn build_soak_world(spec: &Spec, run_seed: u64) -> World {
    let ctx = runner::testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    let pair = pairs.first().expect("an exposed-terminal pair exists");
    let mut world = runner::build_world(&ctx, run_seed);
    world.add_flow(pair.s1, pair.r1, spec.payload);
    world.add_flow(pair.s2, pair.r2, spec.payload);
    Protocol::cmap().install(&mut world);
    world.install_faults(soak_plan(world.node_count()));
    world
}

#[test]
fn pool_drains_to_zero_after_churn_and_restore() {
    let spec = Spec {
        duration: secs(4),
        configs: 2,
        ..Spec::default()
    };

    // Phase 1: run to mid-flight and checkpoint with slots live.
    let mut w = build_soak_world(&spec, 21);
    w.run_until(secs(2));
    assert!(w.pool_high_water() > 0, "no transmissions recorded");
    assert!(
        w.pool_recycled() > 1000,
        "pool barely cycled: {}",
        w.pool_recycled()
    );
    let ckpt = w.checkpoint().expect("checkpoint at mid-run");
    let live_at_ckpt = w.pool_frames_live();
    let recycled_at_ckpt = w.pool_recycled();

    // Phase 2: restore into a fresh world; the counters continue and the
    // restored live set matches the checkpointed one.
    let mut r = build_soak_world(&spec, 21);
    r.restore(&ckpt).expect("restore");
    assert_eq!(r.pool_frames_live(), live_at_ckpt);
    assert_eq!(r.pool_recycled(), recycled_at_ckpt);

    // Phase 3: soak to the end of the faulted run, then through the
    // all-nodes-down quiesce window.
    r.run_until(spec.duration);
    assert_eq!(r.watchdog_violations(), 0, "watchdog violations");

    // No leak: one slot per node at the half-duplex limit, plus a little
    // headroom for propagation-delay stragglers.
    assert!(
        r.pool_high_water() <= 2 * r.node_count(),
        "pool high water {} exceeds the in-flight bound for {} nodes",
        r.pool_high_water(),
        r.node_count()
    );
    // Quiesced: every claimed slot was released exactly once.
    assert_eq!(
        r.pool_frames_live(),
        0,
        "live slots remain after quiesce (leak)"
    );
    assert!(
        r.pool_recycled() > recycled_at_ckpt,
        "no recycling after restore"
    );
}
