//! Property-based tests for the PHY model: the orderings every experiment
//! implicitly relies on.

use proptest::prelude::*;

use cmap_suite::phy::units::db_to_ratio;
use cmap_suite::phy::{error_model, preamble, Rate};

fn arb_rate() -> impl Strategy<Value = Rate> {
    (0u8..8).prop_map(|v| Rate::from_u8(v).expect("rate"))
}

proptest! {
    /// More SINR never hurts.
    #[test]
    fn per_monotone_in_sinr(rate in arb_rate(), db1 in -10.0f64..35.0, db2 in -10.0f64..35.0, len in 1usize..2000) {
        let (lo, hi) = if db1 <= db2 { (db1, db2) } else { (db2, db1) };
        let p_lo = error_model::per(db_to_ratio(lo), rate, len);
        let p_hi = error_model::per(db_to_ratio(hi), rate, len);
        prop_assert!(p_hi <= p_lo + 1e-12, "{rate}: PER({hi}) {p_hi} > PER({lo}) {p_lo}");
    }

    /// Longer frames never do better.
    #[test]
    fn per_monotone_in_length(rate in arb_rate(), db in -5.0f64..30.0, l1 in 1usize..2000, l2 in 1usize..2000) {
        let (sm, lg) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let p_sm = error_model::per(db_to_ratio(db), rate, sm);
        let p_lg = error_model::per(db_to_ratio(db), rate, lg);
        prop_assert!(p_sm <= p_lg + 1e-12);
    }

    /// Probabilities are probabilities.
    #[test]
    fn all_outputs_are_probabilities(rate in arb_rate(), db in -40.0f64..60.0, len in 0usize..3000) {
        let sinr = db_to_ratio(db);
        for v in [
            error_model::per(sinr, rate, len),
            error_model::packet_success_prob(sinr, rate, len),
            error_model::ber(sinr, rate),
            preamble::preamble_success_prob(sinr),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{v} out of [0,1]");
            prop_assert!(v.is_finite());
        }
    }

    /// The preamble (24 bits of BPSK-1/2) is always at least as robust as a
    /// full frame at any payload rate.
    #[test]
    fn preamble_at_least_as_robust_as_payload(rate in arb_rate(), db in -5.0f64..30.0, len in 24usize..2000) {
        let sinr = db_to_ratio(db);
        let pre = preamble::preamble_success_prob(sinr);
        let pay = error_model::packet_success_prob(sinr, rate, len);
        prop_assert!(pre >= pay - 1e-9, "preamble {pre} < payload {pay}");
    }

    /// Airtime is consistent: frame = PLCP + whole symbols, and symbols
    /// carry exactly n_dbps bits each.
    #[test]
    fn airtime_symbol_accounting(rate in arb_rate(), len in 0usize..3000) {
        let t = rate.frame_airtime_ns(len);
        let plcp = preamble::PLCP_PREAMBLE_NS + preamble::PLCP_SIG_NS;
        let psdu = t - plcp;
        prop_assert_eq!(psdu % 4_000, 0, "not whole OFDM symbols");
        let symbols = psdu / 4_000;
        let bits = 16 + 8 * len as u64 + 6;
        prop_assert_eq!(symbols, bits.div_ceil(rate.n_dbps()));
    }

    /// The BER memo cache is bit-transparent: for any lookup sequence —
    /// random rates, log-spaced SINRs spanning denormal to huge, repeats
    /// and all — every answer is bit-identical to the uncached function,
    /// hits and evicted recomputes alike.
    #[test]
    fn ber_cache_is_bit_transparent(
        lookups in prop::collection::vec((0u8..8, -120.0f64..60.0), 1..200),
        slots in 0usize..128,
    ) {
        let mut cache = cmap_suite::phy::BerCache::new(slots);
        for &(r, db) in &lookups {
            let rate = Rate::from_u8(r).expect("rate");
            let sinr = db_to_ratio(db);
            let cached = cache.ber(sinr, rate);
            let direct = error_model::ber(sinr, rate);
            prop_assert_eq!(cached.to_bits(), direct.to_bits(),
                "cache diverged at sinr={} rate={}", sinr, rate);
            // A second lookup must be a hit with the same bits.
            let hits_before = cache.hits();
            let again = cache.ber(sinr, rate);
            prop_assert_eq!(again.to_bits(), direct.to_bits());
            prop_assert_eq!(cache.hits(), hits_before + 1);
        }
        prop_assert_eq!(cache.hits() + cache.misses(), 2 * lookups.len() as u64);
    }
}
