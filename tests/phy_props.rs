//! Property-based tests for the PHY model: the orderings every experiment
//! implicitly relies on.

use proptest::prelude::*;

use cmap_suite::phy::units::db_to_ratio;
use cmap_suite::phy::{error_model, preamble, Rate};

fn arb_rate() -> impl Strategy<Value = Rate> {
    (0u8..8).prop_map(|v| Rate::from_u8(v).expect("rate"))
}

proptest! {
    /// More SINR never hurts.
    #[test]
    fn per_monotone_in_sinr(rate in arb_rate(), db1 in -10.0f64..35.0, db2 in -10.0f64..35.0, len in 1usize..2000) {
        let (lo, hi) = if db1 <= db2 { (db1, db2) } else { (db2, db1) };
        let p_lo = error_model::per(db_to_ratio(lo), rate, len);
        let p_hi = error_model::per(db_to_ratio(hi), rate, len);
        prop_assert!(p_hi <= p_lo + 1e-12, "{rate}: PER({hi}) {p_hi} > PER({lo}) {p_lo}");
    }

    /// Longer frames never do better.
    #[test]
    fn per_monotone_in_length(rate in arb_rate(), db in -5.0f64..30.0, l1 in 1usize..2000, l2 in 1usize..2000) {
        let (sm, lg) = if l1 <= l2 { (l1, l2) } else { (l2, l1) };
        let p_sm = error_model::per(db_to_ratio(db), rate, sm);
        let p_lg = error_model::per(db_to_ratio(db), rate, lg);
        prop_assert!(p_sm <= p_lg + 1e-12);
    }

    /// Probabilities are probabilities.
    #[test]
    fn all_outputs_are_probabilities(rate in arb_rate(), db in -40.0f64..60.0, len in 0usize..3000) {
        let sinr = db_to_ratio(db);
        for v in [
            error_model::per(sinr, rate, len),
            error_model::packet_success_prob(sinr, rate, len),
            error_model::ber(sinr, rate),
            preamble::preamble_success_prob(sinr),
        ] {
            prop_assert!((0.0..=1.0).contains(&v), "{v} out of [0,1]");
            prop_assert!(v.is_finite());
        }
    }

    /// The preamble (24 bits of BPSK-1/2) is always at least as robust as a
    /// full frame at any payload rate.
    #[test]
    fn preamble_at_least_as_robust_as_payload(rate in arb_rate(), db in -5.0f64..30.0, len in 24usize..2000) {
        let sinr = db_to_ratio(db);
        let pre = preamble::preamble_success_prob(sinr);
        let pay = error_model::packet_success_prob(sinr, rate, len);
        prop_assert!(pre >= pay - 1e-9, "preamble {pre} < payload {pay}");
    }

    /// Airtime is consistent: frame = PLCP + whole symbols, and symbols
    /// carry exactly n_dbps bits each.
    #[test]
    fn airtime_symbol_accounting(rate in arb_rate(), len in 0usize..3000) {
        let t = rate.frame_airtime_ns(len);
        let plcp = preamble::PLCP_PREAMBLE_NS + preamble::PLCP_SIG_NS;
        let psdu = t - plcp;
        prop_assert_eq!(psdu % 4_000, 0, "not whole OFDM symbols");
        let symbols = psdu / 4_000;
        let bits = 16 + 8 * len as u64 + 6;
        prop_assert_eq!(symbols, bits.div_ceil(rate.n_dbps()));
    }

    /// The BER interpolation table is **bit-exact on its sampled grid**:
    /// every stored node is the very `f64` the direct evaluator produces
    /// (the transparency contract the old memo cache carried, restricted
    /// to the grid the table actually samples).
    #[test]
    fn ber_table_is_bit_exact_on_the_grid(
        rate in arb_rate(),
        nodes in prop::collection::vec(0usize..=4096, 1..50),
    ) {
        let t = cmap_suite::phy::BerTable::shared();
        for &i in &nodes {
            let sinr = cmap_suite::phy::BerTable::grid_sinr(i);
            prop_assert_eq!(
                t.grid_value(rate, i).to_bits(),
                error_model::ber(sinr, rate).to_bits(),
                "table node {} diverged at sinr={} rate={}", i, sinr, rate);
        }
    }

    /// Off the grid the table is in its versioned error-bounded mode:
    /// every lookup — any rate, SINRs spanning well past both grid edges —
    /// is a probability within `ERR_BOUND` of the direct evaluator.
    #[test]
    fn ber_table_is_error_bounded_everywhere(
        lookups in prop::collection::vec((0u8..8, -120.0f64..60.0), 1..200),
    ) {
        let t = cmap_suite::phy::BerTable::shared();
        for &(r, db) in &lookups {
            let rate = Rate::from_u8(r).expect("rate");
            let sinr = db_to_ratio(db);
            let interp = t.ber(sinr, rate);
            let direct = error_model::ber(sinr, rate);
            prop_assert!((0.0..=0.5).contains(&interp),
                "table left [0, 0.5] at sinr={} rate={}: {}", sinr, rate, interp);
            prop_assert!((interp - direct).abs() <= cmap_suite::phy::table::ERR_BOUND,
                "error {} beyond bound at sinr={} rate={}",
                (interp - direct).abs(), sinr, rate);
        }
    }
}
