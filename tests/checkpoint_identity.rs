//! The checkpoint byte-identity gate (DESIGN.md "Run-level fault
//! tolerance"): a run interrupted at an arbitrary mid-point, checkpointed,
//! and restored into a *fresh* identically-configured world must finish
//! with byte-identical statistics to the run that was never interrupted.
//!
//! This is the strongest form of the crash-safety claim — not "close
//! enough after resume" but the same determinism bar every other artifact
//! in the repo is held to (same seed ⇒ same bytes). It exercises the full
//! serialization surface: scheduler wheel, radio bank, per-node RNGs,
//! in-flight transmissions, MAC state (CMAP conflict map, windows, defer
//! table; DCF backoff/NAV), rate-adaptation state, stats, and fault
//! processes.

use cmap_suite::cmap::{CmapConfig, CmapMac, ThroughputRate};
use cmap_suite::experiments::{runner, Protocol, Spec};
use cmap_suite::phy::Rate;
use cmap_suite::sim::time::{secs, Time};
use cmap_suite::sim::{CkptError, FaultPlan, World};

fn spec() -> Spec {
    Spec {
        duration: secs(4),
        configs: 2,
        ..Spec::default()
    }
}

/// Build a testbed world with two flows on an exposed-terminal pair,
/// ready for a protocol install. Every call with the same inputs must
/// configure identically — that is exactly the contract `World::restore`
/// checks.
fn build(spec: &Spec, run_seed: u64) -> World {
    use cmap_suite::sim::rng::stream_rng;
    use cmap_suite::topo::select;
    let ctx = runner::testbed_ctx(spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    let pair = pairs.first().expect("an exposed-terminal pair exists");
    let mut world = runner::build_world(&ctx, run_seed);
    world.add_flow(pair.s1, pair.r1, spec.payload);
    world.add_flow(pair.s2, pair.r2, spec.payload);
    world
}

fn finish(w: &mut World, until: Time) -> (String, u64) {
    w.run_until(until);
    assert_eq!(w.watchdog_violations(), 0, "watchdog violations");
    (w.stats().snapshot(), w.events_processed())
}

/// Core gate: straight run vs checkpoint-at-mid + restore-into-fresh-world.
fn assert_resume_identical(
    configure: impl Fn(&mut World),
    faults: Option<FaultPlan>,
    run_seed: u64,
) {
    let spec = spec();
    let mid = spec.duration / 2;
    let setup = |s: &Spec| {
        let mut w = build(s, run_seed);
        configure(&mut w);
        if let Some(plan) = &faults {
            w.install_faults(plan.clone());
        }
        w
    };

    // The uninterrupted reference run.
    let mut straight = setup(&spec);
    let reference = finish(&mut straight, spec.duration);

    // Interrupted run: advance to `mid`, checkpoint, drop the world.
    let ckpt = {
        let mut w = setup(&spec);
        w.run_until(mid);
        w.checkpoint().expect("checkpoint at mid-run")
    };

    // Checkpoint bytes are themselves deterministic.
    let ckpt2 = {
        let mut w = setup(&spec);
        w.run_until(mid);
        w.checkpoint().expect("checkpoint at mid-run, second take")
    };
    assert_eq!(ckpt, ckpt2, "same-seed checkpoints are not byte-identical");

    // Resume in a fresh world (a stand-in for a fresh process: nothing
    // carries over but the blob and the configuration recipe).
    let mut resumed_world = setup(&spec);
    resumed_world.restore(&ckpt).expect("restore");
    let resumed = finish(&mut resumed_world, spec.duration);

    assert_eq!(
        reference, resumed,
        "resumed run diverged from the uninterrupted run"
    );
}

#[test]
fn cmap_resume_is_byte_identical() {
    assert_resume_identical(|w| Protocol::cmap().install(w), None, 11);
}

#[test]
fn cmap_resume_under_faults_is_byte_identical() {
    let plan = FaultPlan::mixed(50, spec().duration);
    assert_resume_identical(|w| Protocol::cmap().install(w), Some(plan), 12);
}

#[test]
fn dcf_resume_is_byte_identical() {
    assert_resume_identical(|w| Protocol::cs_on().install(w), None, 13);
}

#[test]
fn rate_adaptive_cmap_resume_is_byte_identical() {
    let install = |w: &mut World| {
        let cfg = CmapConfig {
            rate_aware: true,
            ..CmapConfig::default()
        };
        for node in 0..w.node_count() {
            let ladder = vec![Rate::R6, Rate::R12, Rate::R18];
            let ctl = Box::new(ThroughputRate::new(ladder));
            w.set_mac(
                node,
                Box::new(CmapMac::with_rate_controller(cfg.clone(), ctl)),
            );
        }
    };
    assert_resume_identical(install, None, 14);
}

#[test]
fn restore_rejects_mismatched_configuration() {
    let spec = spec();
    let ckpt = {
        let mut w = build(&spec, 11);
        Protocol::cmap().install(&mut w);
        w.run_until(spec.duration / 2);
        w.checkpoint().expect("checkpoint")
    };

    // Different seed: the config echo must catch it.
    let mut wrong_seed = build(&spec, 99);
    Protocol::cmap().install(&mut wrong_seed);
    assert!(
        matches!(wrong_seed.restore(&ckpt), Err(CkptError::Mismatch(_))),
        "restore accepted a world built with a different seed"
    );

    // Different flow set.
    let mut wrong_flows = build(&spec, 11);
    wrong_flows.add_flow(0, 1, 100);
    Protocol::cmap().install(&mut wrong_flows);
    assert!(
        matches!(wrong_flows.restore(&ckpt), Err(CkptError::Mismatch(_))),
        "restore accepted a world with extra flows"
    );

    // Already-started worlds cannot be restored into.
    let mut started = build(&spec, 11);
    Protocol::cmap().install(&mut started);
    started.run_until(secs(1));
    assert!(
        matches!(started.restore(&ckpt), Err(CkptError::Mismatch(_))),
        "restore accepted an already-started world"
    );

    // Truncated blobs fail loudly (the world is then poisoned and must be
    // rebuilt — restore makes no atomicity promise, only detection).
    let mut fresh = build(&spec, 11);
    Protocol::cmap().install(&mut fresh);
    assert!(
        fresh.restore(&ckpt[..ckpt.len() / 2]).is_err(),
        "restore accepted a truncated checkpoint"
    );
}

#[test]
fn checkpoint_requires_a_started_world() {
    let spec = spec();
    let w = build(&spec, 11);
    assert!(
        matches!(w.checkpoint(), Err(CkptError::Mismatch(_))),
        "checkpoint of a never-started world must be refused"
    );
}
