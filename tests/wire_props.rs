//! Property-based tests for the wire formats: every representable frame
//! round-trips byte-exactly, and any single-byte corruption is rejected.

use proptest::prelude::*;

use cmap_suite::phy::Rate;
use cmap_suite::wire::{cmap, dot11, Frame, MacAddr};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    (0u8..8).prop_map(|v| Rate::from_u8(v).expect("rate code"))
}

fn arb_entry() -> impl Strategy<Value = cmap::InterfererEntry> {
    (arb_mac(), arb_mac(), arb_rate()).prop_map(|(source, interferer, source_rate)| {
        cmap::InterfererEntry {
            source,
            interferer,
            source_rate,
        }
    })
}

prop_compose! {
    fn arb_header_trailer()(
        src in arb_mac(),
        dst in arb_mac(),
        tx_time_us in any::<u32>(),
        vpkt_seq in any::<u32>(),
        pkt_count in 0u8..=32,
        data_rate in arb_rate(),
        is_trailer in any::<bool>(),
    ) -> Frame {
        let body = cmap::HeaderTrailer { src, dst, tx_time_us, vpkt_seq, pkt_count, data_rate };
        if is_trailer { Frame::CmapTrailer(body) } else { Frame::CmapHeader(body) }
    }
}

prop_compose! {
    fn arb_data()(
        src in arb_mac(),
        dst in arb_mac(),
        vpkt_seq in any::<u32>(),
        index in 0u8..32,
        flow in any::<u16>(),
        flow_seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) -> Frame {
        Frame::CmapData(cmap::Data { src, dst, vpkt_seq, index, flow, flow_seq, payload })
    }
}

prop_compose! {
    fn arb_ack()(
        src in arb_mac(),
        dst in arb_mac(),
        base_vpkt_seq in any::<u32>(),
        bitmaps in proptest::collection::vec(any::<u32>(), 0..=cmap::MAX_ACK_WINDOW),
        loss_rate in any::<u8>(),
        il_entries in proptest::collection::vec(arb_entry(), 0..=8),
    ) -> Frame {
        Frame::CmapAck(cmap::Ack { src, dst, base_vpkt_seq, bitmaps, loss_rate, il_entries })
    }
}

prop_compose! {
    fn arb_il()(
        src in arb_mac(),
        entries in proptest::collection::vec(arb_entry(), 0..=40),
    ) -> Frame {
        Frame::CmapInterfererList(cmap::InterfererList { src, entries })
    }
}

prop_compose! {
    fn arb_dot11_data()(
        src in arb_mac(),
        dst in arb_mac(),
        seq in any::<u16>(),
        retry in any::<bool>(),
        duration_ns in any::<u32>(),
        flow in any::<u16>(),
        flow_seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) -> Frame {
        Frame::Dot11Data(dot11::Data { src, dst, seq, retry, duration_ns, flow, flow_seq, payload })
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_header_trailer(),
        arb_data(),
        arb_ack(),
        arb_il(),
        arb_dot11_data(),
        arb_mac().prop_map(|dst| Frame::Dot11Ack(dot11::Ack { dst })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(frame in arb_frame()) {
        let bytes = frame.emit();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        let parsed = Frame::parse(&bytes).expect("roundtrip parse");
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn corruption_detected(frame in arb_frame(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = frame.emit();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        // Either the CRC rejects it, or (vanishingly unlikely here, single
        // bit flip) it parses to a *different* frame — it must never parse
        // back to the original.
        if let Ok(parsed) = Frame::parse(&bytes) {
            prop_assert_ne!(parsed, frame);
        }
    }

    #[test]
    fn truncation_never_panics(frame in arb_frame(), keep in any::<prop::sample::Index>()) {
        let bytes = frame.emit();
        let k = keep.index(bytes.len() + 1);
        let _ = Frame::parse(&bytes[..k]); // must not panic
    }
}
