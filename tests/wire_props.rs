//! Property-based tests for the wire formats: every representable frame
//! round-trips byte-exactly, and any single-byte corruption is rejected.

use proptest::prelude::*;

use cmap_suite::phy::Rate;
use cmap_suite::wire::view::compose;
use cmap_suite::wire::{cmap, dot11, Frame, FrameView, MacAddr};

fn arb_mac() -> impl Strategy<Value = MacAddr> {
    any::<[u8; 6]>().prop_map(MacAddr)
}

fn arb_rate() -> impl Strategy<Value = Rate> {
    (0u8..8).prop_map(|v| Rate::from_u8(v).expect("rate code"))
}

fn arb_entry() -> impl Strategy<Value = cmap::InterfererEntry> {
    (arb_mac(), arb_mac(), arb_rate()).prop_map(|(source, interferer, source_rate)| {
        cmap::InterfererEntry {
            source,
            interferer,
            source_rate,
        }
    })
}

prop_compose! {
    fn arb_header_trailer()(
        src in arb_mac(),
        dst in arb_mac(),
        tx_time_us in any::<u32>(),
        vpkt_seq in any::<u32>(),
        pkt_count in 0u8..=32,
        data_rate in arb_rate(),
        is_trailer in any::<bool>(),
    ) -> Frame {
        let body = cmap::HeaderTrailer { src, dst, tx_time_us, vpkt_seq, pkt_count, data_rate };
        if is_trailer { Frame::CmapTrailer(body) } else { Frame::CmapHeader(body) }
    }
}

prop_compose! {
    fn arb_data()(
        src in arb_mac(),
        dst in arb_mac(),
        vpkt_seq in any::<u32>(),
        index in 0u8..32,
        flow in any::<u16>(),
        flow_seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) -> Frame {
        Frame::CmapData(cmap::Data { src, dst, vpkt_seq, index, flow, flow_seq, payload })
    }
}

prop_compose! {
    fn arb_ack()(
        src in arb_mac(),
        dst in arb_mac(),
        base_vpkt_seq in any::<u32>(),
        bitmaps in proptest::collection::vec(any::<u32>(), 0..=cmap::MAX_ACK_WINDOW),
        loss_rate in any::<u8>(),
        il_entries in proptest::collection::vec(arb_entry(), 0..=8),
    ) -> Frame {
        Frame::CmapAck(cmap::Ack { src, dst, base_vpkt_seq, bitmaps, loss_rate, il_entries })
    }
}

prop_compose! {
    fn arb_il()(
        src in arb_mac(),
        entries in proptest::collection::vec(arb_entry(), 0..=40),
    ) -> Frame {
        Frame::CmapInterfererList(cmap::InterfererList { src, entries })
    }
}

prop_compose! {
    fn arb_dot11_data()(
        src in arb_mac(),
        dst in arb_mac(),
        seq in any::<u16>(),
        retry in any::<bool>(),
        duration_ns in any::<u32>(),
        flow in any::<u16>(),
        flow_seq in any::<u32>(),
        payload in proptest::collection::vec(any::<u8>(), 0..2048),
    ) -> Frame {
        Frame::Dot11Data(dot11::Data { src, dst, seq, retry, duration_ns, flow, flow_seq, payload })
    }
}

fn arb_frame() -> impl Strategy<Value = Frame> {
    prop_oneof![
        arb_header_trailer(),
        arb_data(),
        arb_ack(),
        arb_il(),
        arb_dot11_data(),
        arb_mac().prop_map(|dst| Frame::Dot11Ack(dot11::Ack { dst })),
    ]
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    #[test]
    fn roundtrip(frame in arb_frame()) {
        let bytes = frame.emit();
        prop_assert_eq!(bytes.len(), frame.wire_len());
        let parsed = Frame::parse(&bytes).expect("roundtrip parse");
        prop_assert_eq!(parsed, frame);
    }

    #[test]
    fn corruption_detected(frame in arb_frame(), pos in any::<prop::sample::Index>(), bit in 0u8..8) {
        let mut bytes = frame.emit();
        let i = pos.index(bytes.len());
        bytes[i] ^= 1 << bit;
        // Either the CRC rejects it, or (vanishingly unlikely here, single
        // bit flip) it parses to a *different* frame — it must never parse
        // back to the original.
        if let Ok(parsed) = Frame::parse(&bytes) {
            prop_assert_ne!(parsed, frame);
        }
    }

    #[test]
    fn truncation_never_panics(frame in arb_frame(), keep in any::<prop::sample::Index>()) {
        let bytes = frame.emit();
        let k = keep.index(bytes.len() + 1);
        let _ = Frame::parse(&bytes[..k]); // must not panic
    }

    /// The zero-copy view over emitted bytes agrees with the owned parser
    /// on every frame kind: converting the view back to a `Frame` is the
    /// identity, and the per-kind accessors read the same fields.
    #[test]
    fn view_agrees_with_frame_parse(frame in arb_frame()) {
        let bytes = frame.emit();
        let view = FrameView::parse_checked(&bytes).expect("view parse");
        prop_assert_eq!(view.wire_len(), bytes.len());
        prop_assert_eq!(view.to_frame(), frame.clone());
        match (&frame, &view) {
            (Frame::CmapHeader(h), FrameView::CmapHeader(v))
            | (Frame::CmapTrailer(h), FrameView::CmapTrailer(v)) => {
                prop_assert_eq!(&v.to_body(), h);
            }
            (Frame::CmapData(d), FrameView::CmapData(v)) => {
                prop_assert_eq!(v.src(), d.src);
                prop_assert_eq!(v.dst(), d.dst);
                prop_assert_eq!(v.vpkt_seq(), d.vpkt_seq);
                prop_assert_eq!(v.index(), d.index);
                prop_assert_eq!(v.flow(), d.flow);
                prop_assert_eq!(v.flow_seq(), d.flow_seq);
                prop_assert_eq!(v.payload(), &d.payload[..]);
            }
            (Frame::CmapAck(a), FrameView::CmapAck(v)) => {
                prop_assert_eq!(v.src(), a.src);
                prop_assert_eq!(v.dst(), a.dst);
                prop_assert_eq!(v.base_vpkt_seq(), a.base_vpkt_seq);
                prop_assert_eq!(v.bitmap_count(), a.bitmaps.len());
                for (i, &bm) in a.bitmaps.iter().enumerate() {
                    prop_assert_eq!(v.bitmap(i), bm);
                }
                prop_assert_eq!(v.loss_rate(), a.loss_rate);
                let entries: Vec<_> = v.il_entries().collect();
                prop_assert_eq!(&entries[..], &a.il_entries[..]);
            }
            (Frame::CmapInterfererList(il), FrameView::CmapInterfererList(v)) => {
                prop_assert_eq!(v.src(), il.src);
                let entries: Vec<_> = v.entries().collect();
                prop_assert_eq!(&entries[..], &il.entries[..]);
            }
            (Frame::Dot11Data(d), FrameView::Dot11Data(v)) => {
                prop_assert_eq!(v.src(), d.src);
                prop_assert_eq!(v.dst(), d.dst);
                prop_assert_eq!(v.seq(), d.seq);
                prop_assert_eq!(v.retry(), d.retry);
                prop_assert_eq!(v.duration_ns(), d.duration_ns);
                prop_assert_eq!(v.flow(), d.flow);
                prop_assert_eq!(v.flow_seq(), d.flow_seq);
                prop_assert_eq!(v.payload(), &d.payload[..]);
            }
            (Frame::Dot11Ack(a), FrameView::Dot11Ack(v)) => {
                prop_assert_eq!(v.dst(), a.dst);
            }
            (f, v) => prop_assert!(false, "kind mismatch: {:?} vs {:?}", f, v),
        }
    }

    /// The pool-slot composers are byte-identical to `Frame::emit` for
    /// every frame the MACs build (payloads are a repeated fill byte, as in
    /// the engine's synthetic traffic).
    #[test]
    fn compose_matches_emit(frame in arb_frame(), fill in any::<u8>(), payload_len in 0usize..2048) {
        let mut buf = Vec::new();
        let reference = match frame {
            Frame::CmapHeader(h) => {
                compose::header_trailer(
                    &mut buf,
                    cmap_suite::wire::FrameKind::CmapHeader,
                    h.src, h.dst, h.tx_time_us, h.vpkt_seq, h.pkt_count, h.data_rate,
                );
                Frame::CmapHeader(h)
            }
            Frame::CmapTrailer(h) => {
                compose::header_trailer(
                    &mut buf,
                    cmap_suite::wire::FrameKind::CmapTrailer,
                    h.src, h.dst, h.tx_time_us, h.vpkt_seq, h.pkt_count, h.data_rate,
                );
                Frame::CmapTrailer(h)
            }
            Frame::CmapData(d) => {
                compose::cmap_data(
                    &mut buf, d.src, d.dst, d.vpkt_seq, d.index, d.flow, d.flow_seq,
                    payload_len, fill,
                );
                Frame::CmapData(cmap::Data { payload: vec![fill; payload_len], ..d })
            }
            Frame::CmapAck(a) => {
                compose::cmap_ack(
                    &mut buf, a.src, a.dst, a.base_vpkt_seq, &a.bitmaps, a.loss_rate,
                    &a.il_entries,
                );
                Frame::CmapAck(a)
            }
            Frame::CmapInterfererList(il) => {
                compose::interferer_list(&mut buf, il.src, &il.entries);
                Frame::CmapInterfererList(il)
            }
            Frame::Dot11Data(d) => {
                compose::dot11_data(
                    &mut buf, d.src, d.dst, d.seq, d.retry, d.duration_ns, d.flow,
                    d.flow_seq, payload_len, fill,
                );
                Frame::Dot11Data(dot11::Data { payload: vec![fill; payload_len], ..d })
            }
            Frame::Dot11Ack(a) => {
                compose::dot11_ack(&mut buf, a.dst);
                Frame::Dot11Ack(a)
            }
        };
        prop_assert_eq!(&buf, &reference.emit());
    }
}
