//! Medium-engine equivalence gates.
//!
//! The sparse spatially-indexed medium is only allowed to be *faster*
//! than the dense matrix, never *different* where it claims exactness:
//!
//! 1. With `epsilon_db = 0` over the same gain matrix, every query the
//!    [`Propagation`] API answers — gains, delays, reachability — must be
//!    bit-for-bit identical to the dense engine (property-tested over
//!    random topologies up to 64 nodes), and a full same-seed simulation
//!    over both engines must leave byte-identical statistics.
//! 2. The 50-node dense path itself is pinned: the office-floor
//!    scenario's `Stats::snapshot()` must hash to the committed baseline
//!    in `tests/data/dense50_snapshot.fnv`. Any byte drift on the
//!    testbed-scale path — however the medium internals are refactored —
//!    fails here before it can silently invalidate published figures.

use proptest::prelude::*;

use cmap_suite::experiments::{runner, Protocol, Spec};
use cmap_suite::obs::fnv1a64;
use cmap_suite::prelude::*;
use cmap_suite::sim::rng::stream_rng;
use cmap_suite::sim::time::{millis, secs};
use cmap_suite::topo::select;

/// A random directed gain/delay matrix: mostly disconnected, with a
/// band of plausible link gains where connected. (Built on the vendored
/// stub's `FnStrategy`, since the matrix size depends on the drawn `n`.)
fn topology() -> impl Strategy<Value = (usize, Vec<f64>, Vec<u64>)> {
    proptest::strategy::FnStrategy(|rng: &mut proptest::test_runner::TestRng| {
        let n = 2 + rng.below(63) as usize;
        let mut gains = Vec::with_capacity(n * n);
        let mut delays = Vec::with_capacity(n * n);
        for _ in 0..n * n {
            // Draws below -120 dB stand in for "no link at all": roughly
            // half the pairs end up disconnected, like a real floor.
            let g = -200.0 + rng.unit_f64() * 160.0;
            gains.push(if g < -120.0 { f64::NEG_INFINITY } else { g });
            delays.push(rng.below(500));
        }
        for i in 0..n {
            gains[i * n + i] = f64::NEG_INFINITY;
            delays[i * n + i] = 0;
        }
        (n, gains, delays)
    })
}

fn engines(n: usize, gains: &[f64], delays: &[u64]) -> (Medium, Medium) {
    let phy = PhyConfig::default();
    let dense = MediumBuilder::new(&phy)
        .gains_db(n, gains, delays)
        .dense()
        .build();
    let sparse = MediumBuilder::new(&phy)
        .epsilon_db(0.0)
        .gains_db(n, gains, delays)
        .sparse()
        .build();
    (dense, sparse)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    #[test]
    fn sparse_epsilon_zero_is_bitwise_dense((n, gains, delays) in topology()) {
        let (dense, sparse) = engines(n, &gains, &delays);
        prop_assert_eq!(dense.len(), n);
        prop_assert_eq!(sparse.len(), n);
        for tx in 0..n {
            let tx = NodeId::new(tx);
            // The exactness contract is over the kept link set: identical
            // reachability, and bit-identical gain/delay on every kept
            // link. (Sub-floor pairs are dropped by the sparse engine and
            // answered as gain 0 — the dense engine keeps the raw matrix
            // value there, but no simulation path consults it.)
            prop_assert_eq!(dense.reachable(tx), sparse.reachable(tx), "reachable({})", tx);
            for &rx in dense.reachable(tx) {
                prop_assert_eq!(
                    dense.gain(tx, rx).to_bits(),
                    sparse.gain(tx, rx).to_bits(),
                    "gain({}, {})", tx, rx
                );
                prop_assert_eq!(
                    dense.delay_ns(tx, rx),
                    sparse.delay_ns(tx, rx),
                    "delay({}, {})", tx, rx
                );
            }
        }
    }
}

/// Engineered 4-node exposed-terminal run over a given medium.
fn run_engine(medium: Medium, seed: u64) -> String {
    let phy = PhyConfig::default();
    let mut w = World::builder().medium(medium).phy(phy).seed(seed).build();
    w.add_flow(0, 1, 1400);
    w.add_flow(2, 3, 1400);
    for node in 0..4usize {
        w.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
    }
    w.run_until(millis(500));
    w.stats().snapshot()
}

#[test]
fn same_seed_sim_is_byte_identical_across_engines() {
    let phy = PhyConfig::default();
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    let mut set = |a: usize, b: usize, rss_dbm: f64| {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    };
    set(0, 1, -60.0);
    set(2, 3, -60.0);
    set(0, 2, -75.0);
    set(0, 3, -93.0);
    set(2, 1, -93.0);
    let delays = vec![100u64; n * n];
    let (dense, sparse) = engines(n, &gains, &delays);
    let a = run_engine(dense, 7);
    let b = run_engine(sparse, 7);
    assert!(!a.is_empty(), "snapshot recorded nothing");
    assert_eq!(a, b, "engines diverged under identical seed and topology");
}

/// The 50-node office-floor scenario the committed baseline pins: the
/// same spec/seed/flows `determinism_snapshot.rs` exercises, run over
/// the dense testbed medium.
fn dense50_snapshot() -> String {
    let spec = Spec {
        duration: secs(5),
        configs: 4,
        ..Spec::default()
    };
    let ctx = runner::testbed_ctx(&spec);
    let mut rng = stream_rng(spec.run_seed, 0x5e1ec7);
    let pairs = select::exposed_pairs(&ctx.lm, spec.configs, &mut rng);
    let pair = pairs.first().expect("an exposed-terminal pair exists");
    let mut world = runner::build_world(&ctx, 11);
    world.add_flow(pair.s1, pair.r1, spec.payload);
    world.add_flow(pair.s2, pair.r2, spec.payload);
    Protocol::cmap().install(&mut world);
    world.run_until(spec.duration);
    world.stats().snapshot()
}

#[test]
fn dense50_snapshot_matches_committed_baseline() {
    let snap = dense50_snapshot();
    let got = fnv1a64(snap.as_bytes());
    let committed = include_str!("data/dense50_snapshot.fnv");
    let want = u64::from_str_radix(
        committed
            .lines()
            .find(|l| !l.trim().is_empty() && !l.starts_with('#'))
            .expect("baseline file holds a hash line")
            .trim()
            .trim_start_matches("0x"),
        16,
    )
    .expect("baseline hash parses as hex");
    assert_eq!(
        got, want,
        "50-node dense-path snapshot drifted from the committed baseline \
         (got {got:#018x}). If the change is an intentional behavior change, \
         regenerate tests/data/dense50_snapshot.fnv; otherwise this is a \
         medium-refactor regression."
    );
}
