//! Offline stand-in for the `rand` crate (0.8 API subset).
//!
//! The build container has no crates.io access, so the workspace patches
//! `rand` to this std-only shim. It provides exactly the surface the CMAP
//! workspace uses — [`rngs::SmallRng`], [`Rng`], [`SeedableRng`] and
//! [`seq::SliceRandom`] — with the same core generator family as the real
//! crate on 64-bit targets (xoshiro256++ seeded via SplitMix64), so streams
//! are deterministic, well distributed, and cheap.
//!
//! Intentional deviations from real `rand`:
//!
//! * `gen_range` uses widening-multiply rejection sampling but is not
//!   bit-compatible with real `rand`'s `Uniform`; simulation results are
//!   deterministic per seed but differ numerically from runs made with the
//!   real crate.
//! * There is no `thread_rng`/`from_entropy`: every generator must be
//!   explicitly seeded. This is deliberate — the workspace's determinism
//!   lint (`cmap-lint` rule R2) bans ambient entropy anyway.

/// Low-level source of randomness (subset of `rand_core::RngCore`).
pub trait RngCore {
    /// Next 32 random bits.
    fn next_u32(&mut self) -> u32;
    /// Next 64 random bits.
    fn next_u64(&mut self) -> u64;
    /// Fill `dest` with random bytes.
    fn fill_bytes(&mut self, dest: &mut [u8]);
}

/// Seedable generators (subset of `rand_core::SeedableRng`).
pub trait SeedableRng: Sized {
    /// Raw seed type.
    type Seed: Sized + Default + AsMut<[u8]>;

    /// Build from a raw seed.
    fn from_seed(seed: Self::Seed) -> Self;

    /// Build from a `u64`, expanding it with SplitMix64 exactly like
    /// `rand_core` does.
    fn seed_from_u64(mut state: u64) -> Self {
        let mut seed = Self::Seed::default();
        for chunk in seed.as_mut().chunks_mut(4) {
            // SplitMix64 step + mix, truncated to 32 bits per chunk
            // (mirrors rand_core::SeedableRng::seed_from_u64).
            state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
            let mut z = state;
            z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
            z ^= z >> 31;
            let bytes = (z as u32).to_le_bytes();
            let n = chunk.len();
            chunk.copy_from_slice(&bytes[..n]);
        }
        Self::from_seed(seed)
    }
}

/// Types drawable from the "standard" distribution via [`Rng::gen`].
pub trait Standard2: Sized {
    /// Draw one value.
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

macro_rules! impl_standard_uint {
    ($($t:ty),*) => {$(
        impl Standard2 for $t {
            #[inline]
            fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_standard_uint!(u8, u16, u32, u64, usize);

impl Standard2 for i8 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i8
    }
}
impl Standard2 for i16 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i16
    }
}
impl Standard2 for i32 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i32
    }
}
impl Standard2 for i64 {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() as i64
    }
}

impl Standard2 for bool {
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

impl Standard2 for f64 {
    /// Uniform in `[0, 1)` with 53 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl Standard2 for f32 {
    /// Uniform in `[0, 1)` with 24 bits of precision.
    #[inline]
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        (rng.next_u32() >> 8) as f32 * (1.0 / (1u32 << 24) as f32)
    }
}

impl<T: Standard2, const N: usize> Standard2 for [T; N] {
    fn draw<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        std::array::from_fn(|_| T::draw(rng))
    }
}

/// Scalar types usable as `gen_range` bounds.
pub trait SampleUniform: Copy + PartialOrd {
    /// Uniform draw from `[lo, hi)` (`hi` included when `inclusive`).
    fn sample_range<R: RngCore + ?Sized>(rng: &mut R, lo: Self, hi: Self, inclusive: bool)
        -> Self;
}

#[inline]
fn uniform_u64<R: RngCore + ?Sized>(rng: &mut R, span: u64) -> u64 {
    debug_assert!(span > 0);
    // Widening-multiply with rejection (Lemire): unbiased and branch-light.
    let zone = span.wrapping_neg() % span; // 2^64 mod span
    loop {
        let wide = rng.next_u64() as u128 * span as u128;
        let lo = wide as u64;
        if lo >= zone {
            return (wide >> 64) as u64;
        }
    }
}

macro_rules! impl_sample_uint {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let width = (hi - lo) as u64;
                if inclusive {
                    if width == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + uniform_u64(rng, width + 1) as $t
                } else {
                    lo + uniform_u64(rng, width) as $t
                }
            }
        }
    )*};
}
impl_sample_uint!(u8, u16, u32, u64, usize);

macro_rules! impl_sample_float {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            #[inline]
            fn sample_range<R: RngCore + ?Sized>(
                rng: &mut R,
                lo: Self,
                hi: Self,
                inclusive: bool,
            ) -> Self {
                assert!(
                    if inclusive { lo <= hi } else { lo < hi },
                    "cannot sample empty range"
                );
                let unit: $t = Standard2::draw(rng);
                let v = lo + unit * (hi - lo);
                // Guard the open upper bound against rounding.
                if !inclusive && v >= hi {
                    lo
                } else {
                    v
                }
            }
        }
    )*};
}
impl_sample_float!(f32, f64);

/// Argument types accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw a value from the range.
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

impl<T: SampleUniform> SampleRange<T> for std::ops::Range<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, self.start, self.end, false)
    }
}

impl<T: SampleUniform> SampleRange<T> for std::ops::RangeInclusive<T> {
    #[inline]
    fn sample<R: RngCore + ?Sized>(self, rng: &mut R) -> T {
        T::sample_range(rng, *self.start(), *self.end(), true)
    }
}

/// High-level convenience methods, blanket-implemented for every
/// [`RngCore`] (subset of `rand::Rng`).
pub trait Rng: RngCore {
    /// Draw a value from the standard distribution.
    #[inline]
    fn gen<T: Standard2>(&mut self) -> T {
        T::draw(self)
    }

    /// Uniform draw from `range`.
    #[inline]
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T {
        range.sample(self)
    }

    /// `true` with probability `p`. Panics unless `0 <= p <= 1`.
    #[inline]
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool p={p} out of [0, 1]");
        let unit: f64 = Standard2::draw(self);
        unit < p
    }

    /// Fill a byte slice with random data.
    #[inline]
    fn fill(&mut self, dest: &mut [u8]) {
        self.fill_bytes(dest);
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

pub mod rngs {
    //! Concrete generators.

    use super::{RngCore, SeedableRng};

    /// Deterministic small fast RNG: xoshiro256++, the same algorithm the
    /// real `rand` 0.8 uses for `SmallRng` on 64-bit platforms.
    #[derive(Debug, Clone, PartialEq, Eq)]
    pub struct SmallRng {
        s: [u64; 4],
    }

    impl RngCore for SmallRng {
        #[inline]
        fn next_u32(&mut self) -> u32 {
            (self.next_u64() >> 32) as u32
        }

        #[inline]
        fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        fn fill_bytes(&mut self, dest: &mut [u8]) {
            for chunk in dest.chunks_mut(8) {
                let bytes = self.next_u64().to_le_bytes();
                let n = chunk.len();
                chunk.copy_from_slice(&bytes[..n]);
            }
        }
    }

    impl SmallRng {
        /// Expose the raw xoshiro256++ state, so checkpointing code can
        /// serialize a generator mid-stream (`cmap-ckpt/v1`).
        pub fn state(&self) -> [u64; 4] {
            self.s
        }

        /// Rebuild a generator from [`SmallRng::state`] output. No all-zero
        /// nudge: states captured from a live generator are never all-zero
        /// (the zero state is a fixed point `from_seed` already avoids).
        pub fn from_state(s: [u64; 4]) -> SmallRng {
            SmallRng { s }
        }
    }

    impl SeedableRng for SmallRng {
        type Seed = [u8; 32];

        fn from_seed(seed: Self::Seed) -> SmallRng {
            let mut s = [0u64; 4];
            for (i, word) in s.iter_mut().enumerate() {
                let mut b = [0u8; 8];
                b.copy_from_slice(&seed[i * 8..i * 8 + 8]);
                *word = u64::from_le_bytes(b);
            }
            // An all-zero state would be a fixed point; nudge it.
            if s == [0, 0, 0, 0] {
                s = [
                    0x9E37_79B9_7F4A_7C15,
                    0xBF58_476D_1CE4_E5B9,
                    0x94D0_49BB_1331_11EB,
                    0x2545_F491_4F6C_DD1D,
                ];
            }
            SmallRng { s }
        }
    }

    /// Alias so `StdRng`-based code also compiles against the shim.
    pub type StdRng = SmallRng;
}

pub mod seq {
    //! Slice sampling helpers (subset of `rand::seq`).

    use super::Rng;

    /// Random selection and shuffling on slices.
    pub trait SliceRandom {
        /// Element type.
        type Item;

        /// Uniformly random element, `None` on an empty slice.
        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&Self::Item>;

        /// Fisher–Yates shuffle in place.
        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R);
    }

    impl<T> SliceRandom for [T] {
        type Item = T;

        fn choose<R: Rng + ?Sized>(&self, rng: &mut R) -> Option<&T> {
            if self.is_empty() {
                None
            } else {
                Some(&self[rng.gen_range(0..self.len())])
            }
        }

        fn shuffle<R: Rng + ?Sized>(&mut self, rng: &mut R) {
            for i in (1..self.len()).rev() {
                self.swap(i, rng.gen_range(0..=i));
            }
        }
    }
}

pub mod prelude {
    //! Glob-import surface mirroring `rand::prelude`.
    pub use super::rngs::SmallRng;
    pub use super::seq::SliceRandom;
    pub use super::{Rng, RngCore, SeedableRng};
}

#[cfg(test)]
mod tests {
    use super::rngs::SmallRng;
    use super::seq::SliceRandom;
    use super::{Rng, RngCore, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = SmallRng::seed_from_u64(7);
        let mut b = SmallRng::seed_from_u64(7);
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn different_seeds_disagree() {
        let mut a = SmallRng::seed_from_u64(1);
        let mut b = SmallRng::seed_from_u64(2);
        let va: Vec<u64> = (0..8).map(|_| a.gen::<u64>()).collect();
        let vb: Vec<u64> = (0..8).map(|_| b.gen::<u64>()).collect();
        assert_ne!(va, vb);
    }

    #[test]
    fn gen_range_respects_bounds() {
        let mut rng = SmallRng::seed_from_u64(3);
        for _ in 0..1000 {
            let v = rng.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let w = rng.gen_range(5usize..=5);
            assert_eq!(w, 5);
            let f = rng.gen_range(-1.0f64..1.0);
            assert!((-1.0..1.0).contains(&f));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = SmallRng::seed_from_u64(4);
        for _ in 0..100 {
            assert!(!rng.gen_bool(0.0));
            assert!(rng.gen_bool(1.0));
        }
    }

    #[test]
    fn gen_bool_frequency_tracks_p() {
        let mut rng = SmallRng::seed_from_u64(5);
        let hits = (0..10_000).filter(|_| rng.gen_bool(0.25)).count();
        assert!((2000..3000).contains(&hits), "{hits}");
    }

    #[test]
    fn shuffle_is_a_permutation() {
        let mut rng = SmallRng::seed_from_u64(6);
        let mut v: Vec<u32> = (0..50).collect();
        v.shuffle(&mut rng);
        let mut sorted = v.clone();
        sorted.sort_unstable();
        assert_eq!(sorted, (0..50).collect::<Vec<_>>());
    }

    #[test]
    fn state_round_trip_resumes_stream() {
        let mut a = SmallRng::seed_from_u64(11);
        for _ in 0..17 {
            let _ = a.next_u64();
        }
        let mut b = SmallRng::from_state(a.state());
        for _ in 0..64 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    fn choose_none_on_empty() {
        let mut rng = SmallRng::seed_from_u64(7);
        let empty: [u8; 0] = [];
        assert!(empty.choose(&mut rng).is_none());
        assert_eq!([42u8].choose(&mut rng), Some(&42));
    }
}
