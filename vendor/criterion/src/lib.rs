//! Offline stand-in for `criterion` (0.5 API subset).
//!
//! The build container has no crates.io access, so the workspace patches
//! `criterion` to this shim. Benchmarks compile and run as smoke tests:
//! each `bench_function` body executes its `iter` closure a handful of
//! times and reports wall time to stderr, with none of real criterion's
//! statistics, warm-up, or HTML reports. `cargo test` therefore still
//! exercises every benchmark's code path, and `cargo bench` gives a rough
//! single-shot timing.

/// Opaque-value barrier (forwarded to `std::hint::black_box`).
#[inline]
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Per-benchmark timing driver.
pub struct Bencher {
    iters: u32,
    last_ns: u128,
}

impl Bencher {
    /// Run `f` `self.iters` times, recording total wall time.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let start = std::time::Instant::now();
        for _ in 0..self.iters {
            black_box(f());
        }
        self.last_ns = start.elapsed().as_nanos();
    }
}

/// Benchmark registry and runner (subset of real `Criterion`).
pub struct Criterion {
    iters: u32,
}

impl Default for Criterion {
    fn default() -> Criterion {
        // One iteration in test mode (smoke run), three under `cargo bench`.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { iters: if test_mode { 1 } else { 3 } }
    }
}

impl Criterion {
    /// Run one named benchmark.
    pub fn bench_function<F: FnMut(&mut Bencher)>(
        &mut self,
        name: &str,
        mut f: F,
    ) -> &mut Criterion {
        let mut b = Bencher { iters: self.iters, last_ns: 0 };
        f(&mut b);
        let per_iter = b.last_ns / u128::from(self.iters.max(1));
        eprintln!("bench {name}: {per_iter} ns/iter ({} iters; criterion shim)", self.iters);
        self
    }

    /// Accepted for API compatibility; the shim ignores sample counts.
    pub fn sample_size(&mut self, _n: usize) -> &mut Criterion {
        self
    }

    /// Accepted for API compatibility; the shim ignores measurement time.
    pub fn measurement_time(&mut self, _d: std::time::Duration) -> &mut Criterion {
        self
    }
}

/// Group benchmark functions under one runner entry point.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $cfg:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c: $crate::Criterion = $cfg;
            $( $target(&mut c); )+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut c = $crate::Criterion::default();
            $( $target(&mut c); )+
        }
    };
}

/// Emit `main` running each group.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $( $group(); )+
        }
    };
}
