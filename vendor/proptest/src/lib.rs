//! Offline stand-in for `proptest` (1.x API subset).
//!
//! The build container has no crates.io access, so the workspace patches
//! `proptest` to this std-only miniature property-testing engine. It keeps
//! the call-site syntax of real proptest — `proptest!`, `prop_compose!`,
//! `prop_oneof!`, `any::<T>()`, `proptest::collection::vec`, `prop_map`,
//! `prop_assert*!` — and runs each property over a configurable number of
//! pseudo-random cases.
//!
//! Intentional deviations from real proptest:
//!
//! * **No shrinking.** A failing case reports the case index and the
//!   assertion message; it does not minimise the input.
//! * **Deterministic seeds.** Real proptest seeds from OS entropy; this
//!   engine derives the seed from the test's `file!()` and function name,
//!   so a failure reproduces on every run and on every machine — the same
//!   policy `cmap-lint` rule R2 enforces on the simulator itself. Set
//!   `PROPTEST_CASES` to raise or lower the case count.
//! * `.proptest-regressions` files are ignored.

use std::fmt;

pub mod test_runner {
    //! Deterministic case generator state.

    /// xoshiro256++ — small, fast, and identical to the workspace's
    /// simulation RNG family.
    #[derive(Debug, Clone)]
    pub struct TestRng {
        s: [u64; 4],
    }

    impl TestRng {
        /// Seed from a `u64` via SplitMix64 expansion.
        pub fn seed_from_u64(seed: u64) -> TestRng {
            let mut state = seed;
            let mut s = [0u64; 4];
            for word in &mut s {
                state = state.wrapping_add(0x9E37_79B9_7F4A_7C15);
                let mut z = state;
                z = (z ^ (z >> 30)).wrapping_mul(0xBF58_476D_1CE4_E5B9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94D0_49BB_1331_11EB);
                *word = z ^ (z >> 31);
            }
            if s == [0, 0, 0, 0] {
                s[0] = 1;
            }
            TestRng { s }
        }

        /// Stable per-test seed from source location + test name (FNV-1a).
        pub fn deterministic(file: &str, test_name: &str) -> TestRng {
            let mut h: u64 = 0xCBF2_9CE4_8422_2325;
            for b in file.bytes().chain([0]).chain(test_name.bytes()) {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01B3);
            }
            TestRng::seed_from_u64(h)
        }

        /// Next 64 random bits.
        pub fn next_u64(&mut self) -> u64 {
            let out = self.s[0]
                .wrapping_add(self.s[3])
                .rotate_left(23)
                .wrapping_add(self.s[0]);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            out
        }

        /// Uniform `u64` below `span` (> 0), via widening multiply with
        /// rejection.
        pub fn below(&mut self, span: u64) -> u64 {
            debug_assert!(span > 0);
            let zone = span.wrapping_neg() % span;
            loop {
                let wide = self.next_u64() as u128 * span as u128;
                if (wide as u64) >= zone {
                    return (wide >> 64) as u64;
                }
            }
        }

        /// Uniform `f64` in `[0, 1)`.
        pub fn unit_f64(&mut self) -> f64 {
            (self.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
        }
    }
}

use test_runner::TestRng;

/// Why a test case failed.
#[derive(Debug)]
pub struct TestCaseError(pub String);

impl TestCaseError {
    /// Build from a rendered message.
    pub fn fail(msg: impl Into<String>) -> TestCaseError {
        TestCaseError(msg.into())
    }
}

impl fmt::Display for TestCaseError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.0)
    }
}

/// Per-property configuration (subset of real `ProptestConfig`).
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of random cases to run.
    pub cases: u32,
}

impl ProptestConfig {
    /// Config running `cases` cases.
    pub fn with_cases(cases: u32) -> ProptestConfig {
        ProptestConfig { cases }
    }

    /// Effective case count: `PROPTEST_CASES` env var overrides, else the
    /// configured value.
    pub fn effective_cases(&self) -> u32 {
        match std::env::var("PROPTEST_CASES") {
            Ok(v) => v.parse().unwrap_or(self.cases),
            Err(_) => self.cases,
        }
    }
}

impl Default for ProptestConfig {
    fn default() -> ProptestConfig {
        // Real proptest defaults to 256; 64 keeps the suite quick while
        // still exercising the space. Override with PROPTEST_CASES.
        ProptestConfig { cases: 64 }
    }
}

pub mod strategy {
    //! The [`Strategy`] trait and combinators.

    use super::test_runner::TestRng;

    /// A recipe for generating values of `Self::Value`.
    pub trait Strategy {
        /// The generated type.
        type Value;

        /// Draw one value.
        fn generate(&self, rng: &mut TestRng) -> Self::Value;

        /// Map generated values through `f`.
        fn prop_map<O, F: Fn(Self::Value) -> O>(self, f: F) -> Map<Self, F>
        where
            Self: Sized,
        {
            Map { inner: self, f }
        }

        /// Type-erase.
        fn boxed(self) -> BoxedStrategy<Self::Value>
        where
            Self: Sized + 'static,
        {
            Box::new(self)
        }
    }

    /// A type-erased strategy.
    pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

    impl<T> Strategy for Box<dyn Strategy<Value = T>> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (**self).generate(rng)
        }
    }

    impl<S: Strategy + ?Sized> Strategy for &S {
        type Value = S::Value;
        fn generate(&self, rng: &mut TestRng) -> S::Value {
            (**self).generate(rng)
        }
    }

    /// [`Strategy::prop_map`] combinator.
    pub struct Map<S, F> {
        pub(crate) inner: S,
        pub(crate) f: F,
    }

    impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
        type Value = O;
        fn generate(&self, rng: &mut TestRng) -> O {
            (self.f)(self.inner.generate(rng))
        }
    }

    /// Always yields a clone of one value.
    #[derive(Debug, Clone)]
    pub struct Just<T: Clone>(pub T);

    impl<T: Clone> Strategy for Just<T> {
        type Value = T;
        fn generate(&self, _rng: &mut TestRng) -> T {
            self.0.clone()
        }
    }

    /// Uniform choice between type-erased strategies (`prop_oneof!`).
    pub struct Union<T> {
        arms: Vec<BoxedStrategy<T>>,
    }

    impl<T> Union<T> {
        /// Union over `arms`; panics if empty.
        pub fn new(arms: Vec<BoxedStrategy<T>>) -> Union<T> {
            assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
            Union { arms }
        }
    }

    impl<T> Strategy for Union<T> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            let i = rng.below(self.arms.len() as u64) as usize;
            self.arms[i].generate(rng)
        }
    }

    /// A strategy from a plain generation closure (used by
    /// `prop_compose!`).
    pub struct FnStrategy<F>(pub F);

    impl<T, F: Fn(&mut TestRng) -> T> Strategy for FnStrategy<F> {
        type Value = T;
        fn generate(&self, rng: &mut TestRng) -> T {
            (self.0)(rng)
        }
    }

    macro_rules! impl_tuple_strategy {
        ($($name:ident),+) => {
            impl<$($name: Strategy),+> Strategy for ($($name,)+) {
                type Value = ($($name::Value,)+);
                #[allow(non_snake_case)]
                fn generate(&self, rng: &mut TestRng) -> Self::Value {
                    let ($($name,)+) = self;
                    ($($name.generate(rng),)+)
                }
            }
        };
    }
    impl_tuple_strategy!(A);
    impl_tuple_strategy!(A, B);
    impl_tuple_strategy!(A, B, C);
    impl_tuple_strategy!(A, B, C, D);
    impl_tuple_strategy!(A, B, C, D, E);
    impl_tuple_strategy!(A, B, C, D, E, F);
    impl_tuple_strategy!(A, B, C, D, E, F, G);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I);
    impl_tuple_strategy!(A, B, C, D, E, F, G, H, I, J);

    macro_rules! impl_int_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = (self.end - self.start) as u64;
                    self.start + rng.below(span) as $t
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = (hi - lo) as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo + rng.below(span + 1) as $t
                }
            }
        )*};
    }
    impl_int_range_strategy!(u8, u16, u32, u64, usize);

    macro_rules! impl_signed_range_strategy {
        ($($t:ty => $u:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let span = self.end.wrapping_sub(self.start) as $u as u64;
                    self.start.wrapping_add(rng.below(span) as $t)
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    let span = hi.wrapping_sub(lo) as $u as u64;
                    if span == u64::MAX {
                        return rng.next_u64() as $t;
                    }
                    lo.wrapping_add(rng.below(span + 1) as $t)
                }
            }
        )*};
    }
    impl_signed_range_strategy!(i8 => u8, i16 => u16, i32 => u32, i64 => u64, isize => usize);

    macro_rules! impl_float_range_strategy {
        ($($t:ty),*) => {$(
            impl Strategy for std::ops::Range<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    assert!(self.start < self.end, "empty range strategy");
                    let v = self.start + (rng.unit_f64() as $t) * (self.end - self.start);
                    if v >= self.end { self.start } else { v }
                }
            }
            impl Strategy for std::ops::RangeInclusive<$t> {
                type Value = $t;
                fn generate(&self, rng: &mut TestRng) -> $t {
                    let (lo, hi) = (*self.start(), *self.end());
                    assert!(lo <= hi, "empty range strategy");
                    lo + (rng.unit_f64() as $t) * (hi - lo)
                }
            }
        )*};
    }
    impl_float_range_strategy!(f32, f64);
}

pub use strategy::{BoxedStrategy, Just, Strategy};

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an arbitrary value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

macro_rules! impl_arbitrary_uint {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
impl_arbitrary_uint!(u8, u16, u32, u64, u128, usize, i8, i16, i32, i64, isize);

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

impl Arbitrary for f64 {
    /// Finite values only, spread over a wide dynamic range.
    fn arbitrary(rng: &mut TestRng) -> f64 {
        let mag = rng.unit_f64() * 600.0 - 300.0; // exponent in [-300, 300)
        let sign = if rng.next_u64() & 1 == 1 { -1.0 } else { 1.0 };
        sign * rng.unit_f64() * 10f64.powf(mag / 10.0)
    }
}

impl Arbitrary for f32 {
    fn arbitrary(rng: &mut TestRng) -> f32 {
        f64::arbitrary(rng) as f32
    }
}

impl<T: Arbitrary, const N: usize> Arbitrary for [T; N] {
    fn arbitrary(rng: &mut TestRng) -> [T; N] {
        std::array::from_fn(|_| T::arbitrary(rng))
    }
}

/// Strategy returned by [`any`].
pub struct Any<T>(std::marker::PhantomData<T>);

impl<T: Arbitrary> Strategy for Any<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        T::arbitrary(rng)
    }
}

/// The canonical strategy for `T` (`any::<T>()`).
pub fn any<T: Arbitrary>() -> Any<T> {
    Any(std::marker::PhantomData)
}

pub mod collection {
    //! Collection strategies.

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// A size specification: fixed, half-open, or inclusive.
    #[derive(Debug, Clone)]
    pub struct SizeRange {
        lo: usize,
        hi_inclusive: usize,
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> SizeRange {
            SizeRange { lo: n, hi_inclusive: n }
        }
    }

    impl From<std::ops::Range<usize>> for SizeRange {
        fn from(r: std::ops::Range<usize>) -> SizeRange {
            assert!(r.start < r.end, "empty size range");
            SizeRange { lo: r.start, hi_inclusive: r.end - 1 }
        }
    }

    impl From<std::ops::RangeInclusive<usize>> for SizeRange {
        fn from(r: std::ops::RangeInclusive<usize>) -> SizeRange {
            assert!(r.start() <= r.end(), "empty size range");
            SizeRange { lo: *r.start(), hi_inclusive: *r.end() }
        }
    }

    /// Strategy for `Vec<S::Value>` with a length drawn from `size`.
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    /// `Vec` strategy over an element strategy and a size range.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.hi_inclusive - self.size.lo) as u64;
            let len = self.size.lo + if span == 0 { 0 } else { rng.below(span + 1) as usize };
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }
}

pub mod sample {
    //! Sampling helper types.

    use super::test_runner::TestRng;
    use super::Arbitrary;

    /// An index into a collection of not-yet-known size (real proptest's
    /// `prop::sample::Index`).
    #[derive(Debug, Clone, Copy)]
    pub struct Index(u64);

    impl Index {
        /// Project onto `0..len`. Panics if `len == 0`.
        pub fn index(&self, len: usize) -> usize {
            assert!(len > 0, "Index::index on empty collection");
            (self.0 % len as u64) as usize
        }
    }

    impl Arbitrary for Index {
        fn arbitrary(rng: &mut TestRng) -> Index {
            Index(rng.next_u64())
        }
    }
}

pub mod option {
    //! Strategies for `Option<T>` (real proptest's `prop::option`).

    use super::strategy::Strategy;
    use super::test_runner::TestRng;

    /// `None` one case in four, otherwise `Some` of the inner strategy.
    /// (Real proptest defaults to 1-in-10 `None`; the higher rate keeps
    /// absent-field paths covered at this engine's smaller case counts.)
    pub fn of<S: Strategy>(inner: S) -> OptionStrategy<S> {
        OptionStrategy { inner }
    }

    /// Strategy returned by [`of`].
    pub struct OptionStrategy<S> {
        inner: S,
    }

    impl<S: Strategy> Strategy for OptionStrategy<S> {
        type Value = Option<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Option<S::Value> {
            if rng.below(4) == 0 {
                None
            } else {
                Some(self.inner.generate(rng))
            }
        }
    }
}

pub mod prop {
    //! The `prop::` path exposed by the prelude.
    pub use super::collection;
    pub use super::option;
    pub use super::sample;
}

pub mod prelude {
    //! Glob-import surface mirroring `proptest::prelude`.
    pub use super::strategy::{BoxedStrategy, Just, Strategy};
    pub use super::{any, prop, Arbitrary, ProptestConfig, TestCaseError};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_compose, prop_oneof, proptest};
}

/// Fail the current case unless `cond` holds.
#[macro_export]
macro_rules! prop_assert {
    ($cond:expr) => {
        $crate::prop_assert!($cond, "assertion failed: {}", stringify!($cond))
    };
    ($cond:expr, $($fmt:tt)*) => {
        if !($cond) {
            return ::std::result::Result::Err($crate::TestCaseError::fail(format!($($fmt)*)));
        }
    };
}

/// Fail the current case unless the operands compare equal.
#[macro_export]
macro_rules! prop_assert_eq {
    ($a:expr, $b:expr $(,)?) => {{
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(
                    *l == *r,
                    "assertion failed: `{} == {}`\n  left: {:?}\n right: {:?}",
                    stringify!($a), stringify!($b), l, r
                );
            }
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(*l == *r, $($fmt)*);
            }
        }
    }};
}

/// Fail the current case if the operands compare equal.
#[macro_export]
macro_rules! prop_assert_ne {
    ($a:expr, $b:expr $(,)?) => {{
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(
                    *l != *r,
                    "assertion failed: `{} != {}`\n  both: {:?}",
                    stringify!($a), stringify!($b), l
                );
            }
        }
    }};
    ($a:expr, $b:expr, $($fmt:tt)*) => {{
        match (&$a, &$b) {
            (l, r) => {
                $crate::prop_assert!(*l != *r, $($fmt)*);
            }
        }
    }};
}

/// Uniform choice among strategies producing the same value type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::strategy::Union::new(vec![
            $($crate::strategy::Strategy::boxed($arm)),+
        ])
    };
}

/// Define a named strategy function by composing bound sub-strategies
/// (subset of real `prop_compose!`: the no-argument form).
#[macro_export]
macro_rules! prop_compose {
    (
        $(#[$meta:meta])*
        $vis:vis fn $name:ident ( $($arg:ident : $argty:ty),* $(,)? )
        ( $($field:ident in $strat:expr),+ $(,)? )
        -> $ret:ty $body:block
    ) => {
        $(#[$meta])*
        $vis fn $name($($arg: $argty),*) -> impl $crate::strategy::Strategy<Value = $ret> {
            $crate::strategy::FnStrategy(move |__rng: &mut $crate::test_runner::TestRng| {
                $(
                    let $field = $crate::strategy::Strategy::generate(&($strat), __rng);
                )+
                $body
            })
        }
    };
}

/// Declare property tests (subset of real `proptest!`).
#[macro_export]
macro_rules! proptest {
    (
        #![proptest_config($cfg:expr)]
        $($rest:tt)*
    ) => {
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
    ( $($rest:tt)* ) => {
        $crate::__proptest_items! { config = ($crate::ProptestConfig::default()); $($rest)* }
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_items {
    ( config = ($cfg:expr); ) => {};
    (
        config = ($cfg:expr);
        $(#[$meta:meta])*
        fn $name:ident ( $($pat:pat in $strat:expr),+ $(,)? ) $body:block
        $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let __cases = __cfg.effective_cases();
            let mut __rng = $crate::test_runner::TestRng::deterministic(file!(), stringify!($name));
            for __case in 0..__cases {
                let __result: ::std::result::Result<(), $crate::TestCaseError> = (|| {
                    $(
                        let $pat = $crate::strategy::Strategy::generate(&($strat), &mut __rng);
                    )+
                    $body
                    ::std::result::Result::Ok(())
                })();
                if let ::std::result::Result::Err(e) = __result {
                    panic!(
                        "proptest property `{}` failed at case {}/{}:\n{}",
                        stringify!($name), __case + 1, __cases, e
                    );
                }
            }
        }
        $crate::__proptest_items! { config = ($cfg); $($rest)* }
    };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    fn arb_even() -> impl Strategy<Value = u32> {
        (0u32..1000).prop_map(|v| v * 2)
    }

    prop_compose! {
        fn arb_pair()(a in 0u8..10, b in 10u8..20) -> (u8, u8) {
            (a, b)
        }
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(128))]

        #[test]
        fn ranges_respect_bounds(x in 5u64..10, y in 0usize..=3, f in -1.0f64..1.0) {
            prop_assert!((5..10).contains(&x));
            prop_assert!(y <= 3);
            prop_assert!((-1.0..1.0).contains(&f));
        }

        #[test]
        fn map_and_compose(e in arb_even(), (a, b) in arb_pair()) {
            prop_assert_eq!(e % 2, 0);
            prop_assert!(a < 10 && (10..20).contains(&b));
        }

        #[test]
        fn collections_and_samples(
            v in prop::collection::vec(any::<u8>(), 1..50),
            idx in any::<prop::sample::Index>(),
        ) {
            prop_assert!(!v.is_empty() && v.len() < 50);
            prop_assert!(idx.index(v.len()) < v.len());
        }

        #[test]
        fn oneof_hits_all_arms(tag in prop_oneof![Just(1u8), Just(2u8), Just(3u8)]) {
            prop_assert!((1..=3).contains(&tag));
        }

        #[test]
        fn tuples_compose(t in (0u8..4, any::<bool>(), 0u16..9)) {
            prop_assert!(t.0 < 4 && t.2 < 9);
        }
    }

    #[test]
    fn deterministic_rng_is_stable_across_calls() {
        let mut a = crate::test_runner::TestRng::deterministic("f.rs", "t");
        let mut b = crate::test_runner::TestRng::deterministic("f.rs", "t");
        for _ in 0..32 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
    }

    #[test]
    #[should_panic(expected = "proptest property")]
    fn failing_property_panics_with_context() {
        proptest! {
            #[allow(dead_code)]
            fn always_fails(x in 0u8..10) {
                prop_assert!(x > 200, "x was {}", x);
            }
        }
        always_fails();
    }
}
