//! Two-hop content dissemination over a mesh (§5.7): a source feeds three
//! relays, which forward to three leaves. The relay legs are frequently
//! exposed terminals with respect to each other — CMAP lets them run
//! concurrently.
//!
//! ```text
//! cargo run --release --example mesh_relay [seed]
//! ```

use cmap_experiments::runner::{build_world, radio_env, Spec, TestbedCtx};
use cmap_phy::Rate;
use cmap_suite::prelude::*;
use cmap_topo::{select, LinkMeasurements};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    let phy = PhyConfig::default();
    let tb = Testbed::office_floor(seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&phy), Rate::R6, 1400);
    let ctx = TestbedCtx { tb, lm, phy };
    let spec = Spec {
        testbed_seed: seed,
        duration: time::secs(25),
        ..Spec::default()
    };

    let mut rng = cmap_sim::rng::stream_rng(seed, 0x3e5);
    let topo = select::mesh_topologies(&ctx.lm, 3, 1, &mut rng)
        .pop()
        .expect("mesh topology exists on this seed");
    println!(
        "source {} -> relays {:?} -> leaves {:?}",
        topo.source, topo.relays, topo.leaves
    );

    for (label, cmap) in [("802.11 (CS, acks)", false), ("CMAP", true)] {
        let mut world = build_world(&ctx, seed ^ 0x3e5);
        let mut leaf_flows = Vec::new();
        for (k, &a) in topo.relays.iter().enumerate() {
            let up = world.add_flow(topo.source, a, spec.payload);
            let down = world.add_relay_flow(a, topo.leaves[k], spec.payload, up);
            leaf_flows.push((k, up, down));
        }
        for n in 0..world.node_count() {
            if cmap {
                world.set_mac(n, Box::new(CmapMac::new(CmapConfig::default())));
            } else {
                world.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo())));
            }
        }
        world.run_until(spec.duration);

        println!("\n{label}:");
        let mut total = 0.0;
        for &(k, up, down) in &leaf_flows {
            let t_up = world.stats().flow_throughput_mbps(
                up,
                spec.payload,
                spec.measure_from(),
                spec.duration,
            );
            let t_down = world.stats().flow_throughput_mbps(
                down,
                spec.payload,
                spec.measure_from(),
                spec.duration,
            );
            total += t_down;
            println!("  branch {k}: hop1 {t_up:5.2}  leaf {t_down:5.2} Mbit/s");
        }
        println!("  aggregate at leaves: {total:5.2} Mbit/s");
    }
}
