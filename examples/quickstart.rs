//! Quickstart: build a hand-made exposed-terminal topology and watch CMAP
//! double throughput over carrier sense.
//!
//! ```text
//! cargo run --release --example quickstart
//! ```

use cmap_suite::prelude::*;

/// Build the canonical 4-node exposed-terminal world of the paper's Fig 1:
/// S→R and ES→ER, with the senders in range of each other but each receiver
/// out of range of the opposite sender.
fn exposed_world(phy: &PhyConfig, seed: u64) -> World {
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    let mut set = |a: usize, b: usize, rss_dbm: f64| {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    };
    set(0, 1, -60.0); // S  -> R : strong
    set(2, 3, -60.0); // ES -> ER: strong
    set(0, 2, -75.0); // S and ES hear each other (carrier sense fires!)
    set(0, 3, -93.0); // but each receiver barely hears the other sender
    set(2, 1, -93.0);
    set(1, 3, -95.0);
    let medium = MediumBuilder::new(phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    World::builder()
        .medium(medium)
        .phy(phy.clone())
        .seed(seed)
        .build()
}

fn run(label: &str, install: impl Fn(&mut World)) -> (f64, f64) {
    let phy = PhyConfig::default();
    let mut world = exposed_world(&phy, 42);
    let f1 = world.add_flow(0, 1, 1400);
    let f2 = world.add_flow(2, 3, 1400);
    install(&mut world);
    world.run_until(time::secs(10));
    let w = |f| {
        world
            .stats()
            .flow_throughput_mbps(f, 1400, time::secs(3), time::secs(10))
    };
    let (t1, t2) = (w(f1), w(f2));
    println!(
        "{label:<28} S->R {t1:5.2}  ES->ER {t2:5.2}  aggregate {:5.2} Mbit/s",
        t1 + t2
    );
    (t1, t2)
}

fn main() {
    println!("Exposed terminals: two strong links whose senders hear each other.\n");

    let (a1, a2) = run("802.11 (carrier sense)", |w| {
        for node in 0..w.node_count() {
            w.set_mac(node, Box::new(DcfMac::new(DcfConfig::status_quo())));
        }
    });
    let (b1, b2) = run("CMAP", |w| {
        for node in 0..w.node_count() {
            w.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
        }
    });

    let gain = (b1 + b2) / (a1 + a2);
    println!("\nCMAP / 802.11 aggregate gain: {gain:.2}x (the paper reports ~2x, Fig 12)");
}
