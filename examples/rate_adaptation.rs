//! The §3.5 extension in action: CMAP with conflict-map-informed bit-rate
//! adaptation, swept over link quality.
//!
//! For each link RSS, compares fixed 6 Mbit/s (the paper's setting), fixed
//! 54 Mbit/s (greedy), and the throughput-maximising adapter.
//!
//! ```text
//! cargo run --release --example rate_adaptation
//! ```

use cmap_suite::cmap::{CmapConfig, CmapMac, ThroughputRate};
use cmap_suite::prelude::*;

fn run(rss_dbm: f64, mode: &str, seed: u64) -> f64 {
    let phy = PhyConfig::default();
    let n = 2;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    gains[1] = rss_dbm - phy.tx_power_dbm;
    gains[2] = rss_dbm - phy.tx_power_dbm;
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    let mut w = World::builder().medium(medium).phy(phy).seed(seed).build();
    let f = w.add_flow(0, 1, 1400);
    for node in 0..n {
        let mac: Box<dyn Mac> = match mode {
            "fixed6" => Box::new(CmapMac::new(CmapConfig::default())),
            "fixed54" => Box::new(CmapMac::new(CmapConfig::default().at_rate(Rate::R54))),
            "adaptive" => Box::new(CmapMac::with_rate_controller(
                CmapConfig::default(),
                Box::new(ThroughputRate::full_ladder()),
            )),
            _ => unreachable!(),
        };
        w.set_mac(node, mac);
    }
    w.run_until(time::secs(12));
    w.stats()
        .flow_throughput_mbps(f, 1400, time::secs(6), time::secs(12))
}

fn main() {
    println!(
        "{:>10} {:>10} {:>10} {:>10}",
        "RSS dBm", "fixed 6", "fixed 54", "adaptive"
    );
    for rss in [-60.0, -70.0, -78.0, -82.0, -86.0, -90.0] {
        let f6 = run(rss, "fixed6", 1);
        let f54 = run(rss, "fixed54", 2);
        let ad = run(rss, "adaptive", 3);
        println!("{rss:>10.0} {f6:>10.2} {f54:>10.2} {ad:>10.2}");
    }
    println!("\nThe adapter should track the upper envelope: 54 Mbit/s-class");
    println!("throughput on strong links without collapsing on weak ones.");
}
