//! Explore a generated 50-node testbed: link-population bands (§5.1),
//! degree distribution, region partition and an ASCII floor map.
//!
//! ```text
//! cargo run --release --example testbed_explorer [seed]
//! ```

use cmap_experiments::runner::radio_env;
use cmap_phy::Rate;
use cmap_suite::prelude::*;
use cmap_topo::select;

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);
    let phy = PhyConfig::default();
    let tb = Testbed::office_floor(seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&phy), Rate::R6, 1400);

    println!(
        "testbed seed {seed}: {} nodes on {:.0}x{:.0} m\n",
        tb.len(),
        tb.params.width_m,
        tb.params.depth_m
    );

    // ASCII floor map (x -> columns, y -> rows), region digits.
    let regions = select::regions(&tb);
    let (cols, rows) = (70usize, 20usize);
    let mut grid = vec![vec![b'.'; cols]; rows];
    for (i, &(x, y)) in tb.positions.iter().enumerate() {
        let c = ((x / tb.params.width_m) * (cols - 1) as f64) as usize;
        let r = ((y / tb.params.depth_m) * (rows - 1) as f64) as usize;
        grid[r][c] = b'0' + regions[i] as u8;
    }
    for row in &grid {
        println!("{}", String::from_utf8_lossy(row));
    }

    let c = lm.connectivity();
    println!("\nlink population (paper §5.1 in parentheses):");
    println!("  connected directed pairs: {} (2162)", c.connected_pairs);
    println!(
        "  PRR bands: weak {:.0}% (68), intermediate {:.0}% (12), perfect {:.0}% (20)",
        100.0 * c.frac_weak,
        100.0 * c.frac_intermediate,
        100.0 * c.frac_perfect
    );
    println!(
        "  degree: mean {:.1} (15.2), median {:.0} (17)",
        c.mean_degree, c.median_degree
    );
    println!(
        "  signal percentiles: p10 {:.1} dBm, p90 {:.1} dBm",
        lm.signal_p10(),
        lm.signal_p90()
    );

    // Degree histogram.
    let mut degrees: Vec<usize> = (0..tb.len())
        .map(|a| {
            (0..tb.len())
                .filter(|&b| b != a && lm.prr(a, b) >= 0.1 && lm.prr(b, a) >= 0.1)
                .count()
        })
        .collect();
    degrees.sort_unstable();
    println!("\ndegree distribution (PRR >= 0.1 both ways):");
    for chunk in degrees.chunks(10) {
        println!("  {chunk:?}");
    }

    // How many experiment configurations does this seed support?
    let mut rng = cmap_sim::rng::stream_rng(seed, 0xE0);
    println!("\nselectable experiment configurations:");
    println!(
        "  exposed-terminal pairs: {}",
        select::exposed_pairs(&lm, usize::MAX, &mut rng).len()
    );
    println!(
        "  in-range sender pairs: {}",
        select::in_range_pairs(&lm, usize::MAX, &mut rng).len()
    );
    println!(
        "  hidden-terminal pairs: {}",
        select::hidden_pairs(&lm, usize::MAX, &mut rng).len()
    );
    println!(
        "  mesh trees (fanout 3): {}",
        select::mesh_topologies(&lm, 3, 10, &mut rng).len()
    );
}
