//! A realistic office WLAN: multiple access points on the 50-node testbed,
//! one active client each, CMAP vs the 802.11 status quo (the §5.6
//! scenario the paper's introduction motivates).
//!
//! ```text
//! cargo run --release --example office_wlan [seed]
//! ```

use cmap_experiments::runner::{build_world, radio_env, Spec, TestbedCtx};
use cmap_phy::Rate;
use cmap_suite::prelude::*;
use cmap_topo::{select, LinkMeasurements};

fn main() {
    let seed: u64 = std::env::args()
        .nth(1)
        .and_then(|s| s.parse().ok())
        .unwrap_or(42);

    // Generate the building and survey its links, like §5.1.
    let phy = PhyConfig::default();
    let tb = Testbed::office_floor(seed);
    let lm = LinkMeasurements::analyze(&tb, &radio_env(&phy), Rate::R6, 1400);
    let ctx = TestbedCtx { tb, lm, phy };
    let spec = Spec {
        testbed_seed: seed,
        duration: time::secs(20),
        ..Spec::default()
    };

    // Five APs in adjacent regions, one random client each.
    let mut rng = cmap_sim::rng::stream_rng(seed, 0xA9u64);
    let topo = select::ap_topology(&ctx.tb, &ctx.lm, 5, &mut rng)
        .expect("AP topology exists on this seed");
    println!("APs: {:?}", topo.aps);
    for (k, &(s, r)) in topo.links.iter().enumerate() {
        println!(
            "cell {k}: {} -> {} (PRR {:.2}, RSS {:.0} dBm)",
            s,
            r,
            ctx.lm.prr(s, r),
            ctx.lm.rss_dbm(s, r)
        );
    }

    for (label, install) in [
        (
            "802.11 (CS, acks)",
            Box::new(|w: &mut World| {
                for n in 0..w.node_count() {
                    w.set_mac(n, Box::new(DcfMac::new(DcfConfig::status_quo())));
                }
            }) as Box<dyn Fn(&mut World)>,
        ),
        (
            "CMAP",
            Box::new(|w: &mut World| {
                for n in 0..w.node_count() {
                    w.set_mac(n, Box::new(CmapMac::new(CmapConfig::default())));
                }
            }),
        ),
    ] {
        let mut world = build_world(&ctx, seed ^ 0xBEEF);
        let flows: Vec<u16> = topo
            .links
            .iter()
            .map(|&(s, r)| world.add_flow(s, r, spec.payload))
            .collect();
        install(&mut world);
        world.run_until(spec.duration);

        println!("\n{label}:");
        let mut total = 0.0;
        for (k, &f) in flows.iter().enumerate() {
            let t = world.stats().flow_throughput_mbps(
                f,
                spec.payload,
                spec.measure_from(),
                spec.duration,
            );
            total += t;
            println!("  cell {k}: {t:5.2} Mbit/s");
        }
        println!("  aggregate: {total:5.2} Mbit/s");
    }
}
