//! Watch the conflict map converge: run a *conflicting* pair (both
//! receivers are blasted by the opposite sender) and print the evolution of
//! interferer lists, defer tables and per-second throughput.
//!
//! ```text
//! cargo run --release --example conflict_map_trace
//! ```

use cmap_suite::prelude::*;

fn main() {
    let phy = PhyConfig::default();
    let n = 4;
    let mut gains = vec![f64::NEG_INFINITY; n * n];
    let mut set = |a: usize, b: usize, rss_dbm: f64| {
        gains[a * n + b] = rss_dbm - phy.tx_power_dbm;
        gains[b * n + a] = rss_dbm - phy.tx_power_dbm;
    };
    set(0, 1, -60.0); // u -> v
    set(2, 3, -60.0); // x -> y
    set(0, 2, -65.0); // senders hear each other
    set(0, 3, -63.0); // ...and destroy each other's receivers
    set(2, 1, -63.0);
    set(1, 3, -80.0);
    let medium = MediumBuilder::new(&phy)
        .gains_db(n, &gains, &vec![100; n * n])
        .build();
    let mut world = World::builder().medium(medium).phy(phy).seed(11).build();
    let f1 = world.add_flow(0, 1, 1400);
    let f2 = world.add_flow(2, 3, 1400);
    for node in 0..n {
        world.set_mac(node, Box::new(CmapMac::new(CmapConfig::default())));
    }

    println!("conflicting pair: u(0)->v(1) and x(2)->y(3); per-second trace:\n");
    println!(
        "{:>4} {:>7} {:>7} {:>9} {:>11} {:>11}",
        "sec", "u->v", "x->y", "defers", "defer(u)", "defer(x)"
    );
    let mut last_defers = 0;
    for sec in 1..=15u64 {
        world.run_until(time::secs(sec));
        let t1 = world
            .stats()
            .flow_throughput_mbps(f1, 1400, time::secs(sec - 1), time::secs(sec));
        let t2 = world
            .stats()
            .flow_throughput_mbps(f2, 1400, time::secs(sec - 1), time::secs(sec));
        let defers = world.stats().counter(CounterId::CmapDefer);
        let table_len = |node: usize| {
            world
                .mac_ref(node)
                .as_any()
                .downcast_ref::<CmapMac>()
                .unwrap()
                .defer_table()
                .len_at(world.now())
        };
        println!(
            "{sec:>4} {t1:>7.2} {t2:>7.2} {:>9} {:>11} {:>11}",
            defers - last_defers,
            table_len(0),
            table_len(2)
        );
        last_defers = defers;
    }

    println!("\nreceiver v's interferer list:");
    let v = world.mac_ref(1).as_any().downcast_ref::<CmapMac>().unwrap();
    for (src, interferer, rate) in v.interferer_tracker().entries_at(world.now()) {
        println!("  ({src} suffers from {interferer}) at {rate}");
    }
    println!("\nAfter convergence the pair alternates: aggregate approaches the");
    println!("single-link rate instead of mutual destruction (compare Fig 13).");
}
